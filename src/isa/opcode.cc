#include "src/isa/opcode.h"

#include <array>

#include "src/base/strings.h"
#include "src/core/ring.h"

namespace rings {

namespace {

constexpr size_t kCount = static_cast<size_t>(Opcode::kNumOpcodes);

constexpr std::array<OpcodeInfo, kCount> BuildTable() {
  std::array<OpcodeInfo, kCount> t{};
  auto set = [&t](Opcode op, std::string_view mnemonic, OperandKind kind, uint8_t max_ring,
                  bool uses_reg = false) {
    t[static_cast<size_t>(op)] = OpcodeInfo{mnemonic, kind, max_ring, uses_reg};
  };
  set(Opcode::kNop, "nop", OperandKind::kNone, kMaxRing);
  set(Opcode::kLda, "lda", OperandKind::kRead, kMaxRing);
  set(Opcode::kLdq, "ldq", OperandKind::kRead, kMaxRing);
  set(Opcode::kLdx, "ldx", OperandKind::kRead, kMaxRing, true);
  set(Opcode::kSta, "sta", OperandKind::kWrite, kMaxRing);
  set(Opcode::kStq, "stq", OperandKind::kWrite, kMaxRing);
  set(Opcode::kStx, "stx", OperandKind::kWrite, kMaxRing, true);
  set(Opcode::kStz, "stz", OperandKind::kWrite, kMaxRing);
  set(Opcode::kLdai, "ldai", OperandKind::kImmediate, kMaxRing);
  set(Opcode::kLdqi, "ldqi", OperandKind::kImmediate, kMaxRing);
  set(Opcode::kLdxi, "ldxi", OperandKind::kImmediate, kMaxRing, true);
  set(Opcode::kAdai, "adai", OperandKind::kImmediate, kMaxRing);
  set(Opcode::kAda, "ada", OperandKind::kRead, kMaxRing);
  set(Opcode::kSba, "sba", OperandKind::kRead, kMaxRing);
  set(Opcode::kMpy, "mpy", OperandKind::kRead, kMaxRing);
  set(Opcode::kAna, "ana", OperandKind::kRead, kMaxRing);
  set(Opcode::kOra, "ora", OperandKind::kRead, kMaxRing);
  set(Opcode::kEra, "era", OperandKind::kRead, kMaxRing);
  set(Opcode::kAls, "als", OperandKind::kImmediate, kMaxRing);
  set(Opcode::kArs, "ars", OperandKind::kImmediate, kMaxRing);
  set(Opcode::kNega, "nega", OperandKind::kNone, kMaxRing);
  set(Opcode::kXaq, "xaq", OperandKind::kNone, kMaxRing);
  set(Opcode::kAos, "aos", OperandKind::kReadWrite, kMaxRing);
  set(Opcode::kEpp, "epp", OperandKind::kEaOnly, kMaxRing, true);
  set(Opcode::kSpp, "spp", OperandKind::kWrite, kMaxRing, true);
  set(Opcode::kTra, "tra", OperandKind::kTransfer, kMaxRing);
  set(Opcode::kTze, "tze", OperandKind::kTransfer, kMaxRing);
  set(Opcode::kTnz, "tnz", OperandKind::kTransfer, kMaxRing);
  set(Opcode::kTmi, "tmi", OperandKind::kTransfer, kMaxRing);
  set(Opcode::kTpl, "tpl", OperandKind::kTransfer, kMaxRing);
  set(Opcode::kCall, "call", OperandKind::kCall, kMaxRing);
  set(Opcode::kRet, "ret", OperandKind::kReturn, kMaxRing);
  set(Opcode::kMme, "mme", OperandKind::kImmediate, kMaxRing);
  set(Opcode::kSvc, "svc", OperandKind::kImmediate, kSupervisorOuter);
  set(Opcode::kLdbr, "ldbr", OperandKind::kRead, kSupervisorCore);
  set(Opcode::kRett, "rett", OperandKind::kNone, kSupervisorCore);
  set(Opcode::kSio, "sio", OperandKind::kRead, kSupervisorCore, true);
  set(Opcode::kHlt, "hlt", OperandKind::kNone, kSupervisorCore);
  return t;
}

constexpr std::array<OpcodeInfo, kCount> kTable = BuildTable();

}  // namespace

const OpcodeInfo& GetOpcodeInfo(Opcode op) { return kTable[static_cast<size_t>(op)]; }

std::optional<Opcode> OpcodeFromMnemonic(std::string_view mnemonic) {
  for (size_t i = 0; i < kCount; ++i) {
    if (EqualsIgnoreCase(kTable[i].mnemonic, mnemonic)) {
      return static_cast<Opcode>(i);
    }
  }
  return std::nullopt;
}

bool IsValidOpcode(uint64_t raw) { return raw < kCount; }

}  // namespace rings

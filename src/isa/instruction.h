// Instruction word format (the INS of Figure 3). "Machine instructions
// specify two-part operand addresses by giving an offset (in INST.OFFSET)
// relative to one of the PR's (specified by INST.PRNUM) or IPR. Indirect
// addressing may be specified ... by setting the indirect flag (INST.I)."
//
// Word layout (64 bits):
//   bits 63..56  opcode
//   bit  55      I    (indirect)
//   bit  54      P    (PR-relative: base is PR[prnum]; otherwise IPR's segment)
//   bits 53..51  prnum
//   bits 50..48  reg  (X or PR register named by reg-using opcodes)
//   bits 47..45  tag  (index register: X[tag] added to offset when tag != 0)
//   bits 17..0   offset (two's complement)
#ifndef SRC_ISA_INSTRUCTION_H_
#define SRC_ISA_INSTRUCTION_H_

#include <cstdint>
#include <string>

#include "src/isa/opcode.h"
#include "src/mem/word.h"

namespace rings {

struct Instruction {
  Opcode opcode = Opcode::kNop;
  bool indirect = false;     // INST.I
  bool pr_relative = false;  // INST.P (paper: presence of a PRNUM base)
  uint8_t prnum = 0;         // INST.PRNUM
  uint8_t reg = 0;           // destination/source register for reg-using ops
  uint8_t tag = 0;           // index register (0 = no indexing)
  int32_t offset = 0;        // INST.OFFSET, signed 18-bit

  bool operator==(const Instruction&) const = default;
  std::string ToString() const;
};

Word EncodeInstruction(const Instruction& ins);

// Decodes a word. Returns false (leaving *ins unspecified) when the opcode
// field does not name a valid instruction — the processor raises an
// illegal-opcode trap in that case.
bool DecodeInstruction(Word word, Instruction* ins);

// Convenience builders used by tests and by hand-assembled supervisor
// stubs.
Instruction MakeIns(Opcode op, int32_t offset = 0);
Instruction MakeInsReg(Opcode op, uint8_t reg, int32_t offset = 0);
Instruction MakeInsPr(Opcode op, uint8_t prnum, int32_t offset = 0, bool indirect = false);
Instruction MakeInsPrReg(Opcode op, uint8_t prnum, uint8_t reg, int32_t offset = 0,
                         bool indirect = false);

}  // namespace rings

#endif  // SRC_ISA_INSTRUCTION_H_

#include "src/cpu/tlb.h"

namespace rings {

void Tlb::Fill(Segno segno, uint64_t pageno, AbsAddr table_base, AbsAddr frame) {
  const size_t set = SetIndex(segno, pageno);
  size_t slot = kWays;
  for (size_t way = 0; way < kWays; ++way) {
    Entry& e = entries_[set * kWays + way];
    if (e.gen == gen_ && e.segno == segno && e.pageno == pageno &&
        e.table_base == table_base) {
      slot = way;  // refill in place (frame may have changed after a snoop)
      break;
    }
    if (e.gen != gen_ && slot == kWays) {
      slot = way;  // first free way
    }
  }
  if (slot == kWays) {
    slot = victim_[set];
    victim_[set] = static_cast<uint8_t>((victim_[set] + 1) % kWays);
  }
  entries_[set * kWays + slot] = Entry{gen_, segno, pageno, table_base, frame};
  FilterSet(table_base + pageno);
}

size_t Tlb::NoteStore(AbsAddr addr) {
  if (!FilterTest(addr)) {
    return 0;
  }
  // The filter admitted the address: scan, drop matches, and rebuild the
  // filter from the survivors so repeated false positives do not pile up.
  size_t dropped = 0;
  filter_ = {};
  for (Entry& e : entries_) {
    if (e.gen != gen_) {
      continue;
    }
    if (e.table_base + e.pageno == addr) {
      e.gen = 0;
      ++dropped;
    } else {
      FilterSet(e.table_base + e.pageno);
    }
  }
  return dropped;
}

size_t Tlb::InvalidateSegment(Segno segno) {
  size_t dropped = 0;
  for (Entry& e : entries_) {
    if (e.gen == gen_ && e.segno == segno) {
      e.gen = 0;
      ++dropped;
    }
  }
  return dropped;
}

size_t Tlb::InvalidatePage(Segno segno, uint64_t pageno) {
  const size_t set = SetIndex(segno, pageno);
  size_t dropped = 0;
  for (size_t way = 0; way < kWays; ++way) {
    Entry& e = entries_[set * kWays + way];
    if (e.gen == gen_ && e.segno == segno && e.pageno == pageno) {
      e.gen = 0;
      ++dropped;
    }
  }
  return dropped;
}

void Tlb::Flush() {
  ++gen_;
  filter_ = {};
}

}  // namespace rings

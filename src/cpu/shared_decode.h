// Fleet-shared read-only decode: one pre-decoded image of a program's
// segments, built once per distinct program and shared by every machine
// that loads it. At fleet scale (src/fleet) N machines running the same
// guest previously re-decoded the same words N times into N private
// instruction caches; a SharedDecodeImage is keyed by program-image
// identity (an FNV-1a over segment names, gate counts, and words), built
// on first load, published read-only, and handed out by refcount from a
// process-wide registry, so the decode work and the decoded storage are
// paid once per program instead of once per machine.
//
// Ownership and the copy-on-write split: the image is immutable after
// publication — no generation stamps, no chain links, no per-machine
// statistics live in it. Everything mutable (insn/block/verdict caches,
// chain links, counters) stays private per Cpu. A machine consults the
// image only on the slow fetch path, and only after reading the live word
// from its own core store: the fetched word is compared against the
// image's raw word, and on any mismatch — self-modifying code, a snapped
// link, a loader patch — the machine falls back to live decode of its own
// word. That comparison IS the CoW split: a writer diverges from the
// image word-by-word without ever touching it, and its fleet siblings
// keep reading the shared copy untouched.
#ifndef SRC_CPU_SHARED_DECODE_H_
#define SRC_CPU_SHARED_DECODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/isa/instruction.h"
#include "src/mem/word.h"

namespace rings {

class SharedDecodeImage {
 public:
  struct Entry {
    Word raw = 0;            // the word the decode was made from
    Instruction ins{};       // its decode (valid only when decodable)
    bool decodable = false;  // false = the word raises kIllegalOpcode
  };
  struct Segment {
    std::string name;
    std::vector<Entry> words;
  };

  // Incremental construction, then publication. The Builder decodes each
  // word exactly once; after Publish the image is immutable and may be
  // shared across threads without synchronization.
  class Builder {
   public:
    Builder();
    void AddSegment(const std::string& name, const std::vector<Word>& words);
    // Freezes and returns the image; the Builder is spent afterwards.
    std::shared_ptr<const SharedDecodeImage> Publish(uint64_t identity);

   private:
    std::unique_ptr<SharedDecodeImage> image_;
  };

  const std::vector<Segment>& segments() const { return segments_; }
  const Segment* FindSegment(const std::string& name) const;
  uint64_t identity() const { return identity_; }
  // Host bytes held by the decoded tables (the storage shared decode
  // deduplicates across a fleet; reported by bench_fleet).
  size_t bytes() const;

 private:
  SharedDecodeImage() = default;

  std::vector<Segment> segments_;
  uint64_t identity_ = 0;
};

// Process-wide registry of published images, keyed by program-image
// identity. Thread-safe: fleet machine factories run concurrently on
// worker threads. Holds weak references only — when the last machine
// using an image is destroyed the image goes with it.
class SharedDecodeRegistry {
 public:
  static SharedDecodeRegistry& Instance();

  // Returns the published image for `identity`, building it with `build`
  // under the registry lock when no live image exists. `built` (optional)
  // reports whether this call did the build — the per-machine
  // shared_decode_builds counter, and the bench_fleet evidence that a
  // 12-machine fleet decodes each program once.
  std::shared_ptr<const SharedDecodeImage> Acquire(
      uint64_t identity,
      const std::function<std::shared_ptr<const SharedDecodeImage>()>& build,
      bool* built = nullptr);

  // Live (still-referenced) images; purges expired slots. For tests.
  size_t LiveImages();

  // RAII retention scope. The registry holds weak references only, so an
  // image normally dies with its last machine — but a fleet retires each
  // machine before constructing the next (bounding peak memory to one
  // retired member at a time), which would let every image expire in the
  // gap and force a rebuild per machine. While any Pin is alive the
  // registry also keeps a strong reference to every image Acquire hands
  // out; when the last Pin is released the retained references drop and
  // lifetime returns to the machines alone.
  class Pin {
   public:
    Pin();
    ~Pin();
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
  };

 private:
  std::mutex mu_;
  std::unordered_map<uint64_t, std::weak_ptr<const SharedDecodeImage>> images_;
  size_t pin_count_ = 0;
  std::vector<std::shared_ptr<const SharedDecodeImage>> pinned_;
};

}  // namespace rings

#endif  // SRC_CPU_SHARED_DECODE_H_

#include "src/cpu/cpu.h"

#include "src/base/bitfield.h"
#include "src/mem/page_table.h"

namespace rings {

namespace {

constexpr uint32_t kIndexMask = (uint32_t{1} << kWordnoBits) - 1;

}  // namespace

Cpu::Cpu(PhysicalMemory* memory, CycleModel cycle_model)
    : memory_(memory), cycle_model_(cycle_model) {}

// ---------------------------------------------------------------------------
// Trap machinery
// ---------------------------------------------------------------------------

void Cpu::RaiseTrap(TrapCause cause, int64_t code) {
  trap_pending_ = true;
  trap_state_.cause = cause;
  trap_state_.regs = state_at_fetch_;  // IPR addresses the disrupted instruction
  trap_state_.tpr = tpr_;
  trap_state_.instruction = current_ins_;
  trap_state_.code = code;
  trap_state_.fault_addr = pending_fault_addr_;
  pending_fault_addr_ = SegAddr{};
  counters_.CountTrap(cause);
  cycles_ += cycle_model_.trap;
  if (trace_ != nullptr) {
    trace_->Record(TraceEvent{EventKind::kTrap, cycles_, state_at_fetch_.ipr.ring,
                              SegAddr{state_at_fetch_.ipr.segno, state_at_fetch_.ipr.wordno},
                              cause, 0, {}});
  }
}

void Cpu::RaiseServiceTrap(TrapCause cause, int64_t code) {
  // The saved IPR must address the next instruction so that RETT resumes
  // after the service request, not at it.
  RegisterFile after = regs_;
  RaiseTrap(cause, code);
  trap_state_.regs = after;
  trap_state_.regs.ipr.wordno = state_at_fetch_.ipr.wordno + 1;
}

TrapState Cpu::TakeTrap() {
  trap_pending_ = false;
  return trap_state_;
}

void Cpu::Rett(const RegisterFile& state) {
  const bool dbr_changed = !(state.dbr == regs_.dbr);
  regs_ = state;
  trap_pending_ = false;
  cycles_ += cycle_model_.rett;
  if (dbr_changed) {
    // The flush bumps the SDW-cache epoch, retiring every verdict; the
    // decoded-instruction cache and the TLB must also go, since the same
    // segment numbers may now name different segments.
    sdw_cache_.Flush();
    insn_cache_.Flush();
    tlb_.Flush();
  }
  if (trace_ != nullptr) {
    trace_->Record(TraceEvent{EventKind::kTrapReturn, cycles_, regs_.ipr.ring,
                              SegAddr{regs_.ipr.segno, regs_.ipr.wordno}, TrapCause::kNone, 0,
                              {}});
  }
}

void Cpu::SetDbr(const DbrValue& dbr) {
  regs_.dbr = dbr;
  sdw_cache_.Flush();
  insn_cache_.Flush();
  tlb_.Flush();
}

void Cpu::InjectTrap(TrapCause cause, int64_t code) {
  state_at_fetch_ = regs_;
  tpr_ = Tpr{};
  current_ins_ = Instruction{};
  RaiseTrap(cause, code);
}

// ---------------------------------------------------------------------------
// Memory and descriptor access
// ---------------------------------------------------------------------------

bool Cpu::FetchSdw(Segno segno, Sdw* out) {
  if (auto cached = sdw_cache_.Lookup(segno); cached.has_value()) {
    ++counters_.sdw_cache_hits;
    *out = *cached;
    if (!out->present) {
      RaiseTrap(TrapCause::kMissingSegment);
      return false;
    }
    return true;
  }
  ++counters_.sdw_fetches;
  cycles_ += cycle_model_.sdw_fetch;
  if (segno >= regs_.dbr.bound) {
    RaiseTrap(TrapCause::kMissingSegment);
    return false;
  }
  const AbsAddr addr = regs_.dbr.base + static_cast<AbsAddr>(segno) * kSdwPairWords;
  Sdw sdw = DecodeSdw(memory_->Read(addr), memory_->Read(addr + 1));
  if (fault_injector_ != nullptr) {
    // Injected bit damage lands in the fetched copy (and thus the cache),
    // never in the descriptor segment itself: the authoritative SDW stays
    // intact, so the supervisor can detect and recover from the mismatch.
    if (fault_injector_->MaybeCorruptSdw(cycles_, segno, &sdw)) {
      // Translations memoized for this segment were derived through the
      // clean descriptor; they must not survive alongside the damaged
      // copy about to be cached.
      tlb_.InvalidateSegment(segno);
      ++counters_.tlb_invalidations;
    }
  }
  // Whatever the insert evicts from this slot, the matching verdict slot
  // can no longer vouch for it (verdict validity implies SDW residency).
  verdict_cache_.InvalidateSlot(segno % SdwCache::kEntries);
  sdw_cache_.Insert(segno, sdw);
  if (!sdw.present) {
    RaiseTrap(TrapCause::kMissingSegment);
    return false;
  }
  *out = sdw;
  return true;
}

bool Cpu::CheckBounds(const Sdw& sdw, Wordno wordno) {
  if (wordno >= sdw.bound) {
    RaiseTrap(TrapCause::kBoundsViolation);
    return false;
  }
  return true;
}

// Final address resolution. Unpaged segments are contiguous; paged
// segments cost one PTW fetch per reference ("paging is also taken into
// account by the address translation logic, but is totally transparent to
// an executing machine language program").
TrapCause Cpu::ResolveAddress(const Sdw& sdw, Segno segno, Wordno wordno, AbsAddr* out) {
  if (!sdw.paged) {
    *out = sdw.base + wordno;
    return TrapCause::kNone;
  }
  return WalkPageTable(sdw.base, segno, wordno, out);
}

TrapCause Cpu::WalkPageTable(AbsAddr table_base, Segno segno, Wordno wordno, AbsAddr* out) {
  // The walk's simulated cost is charged unconditionally: whether the
  // translation comes from the TLB or from the PTW read below, the
  // simulated machine performed one page-table reference.
  ++counters_.page_walks;
  cycles_ += cycle_model_.memory_ref;
  const uint64_t pageno = wordno >> kPageShift;
  if (TlbEnabled()) {
    if (const Tlb::Entry* t = tlb_.Lookup(segno, pageno, table_base)) {
      ++counters_.tlb_hits;
      *out = t->frame + (wordno & kPageMask);
      return TrapCause::kNone;
    }
    ++counters_.tlb_misses;
  }
  const Ptw ptw = DecodePtw(memory_->Read(table_base + pageno));
  if (!ptw.present) {
    pending_fault_addr_ = SegAddr{segno, wordno};
    return TrapCause::kMissingPage;
  }
  if (TlbEnabled()) {
    // Only present pages are memoized, and only after the Read above
    // succeeded — so a later TLB hit can never skip a read the slow path
    // would have faulted on, and missing-page traps always re-walk.
    tlb_.Fill(segno, pageno, table_base, ptw.frame);
  }
  *out = ptw.frame + (wordno & kPageMask);
  return TrapCause::kNone;
}

bool Cpu::ResolveOrFault(const Sdw& sdw, Segno segno, Wordno wordno, AbsAddr* out) {
  const TrapCause cause = ResolveAddress(sdw, segno, wordno, out);
  if (cause != TrapCause::kNone) {
    RaiseTrap(cause);
    return false;
  }
  return true;
}

std::optional<Sdw> Cpu::ReadSdw(Segno segno) const {
  if (segno >= regs_.dbr.bound) {
    return std::nullopt;
  }
  const AbsAddr addr = regs_.dbr.base + static_cast<AbsAddr>(segno) * kSdwPairWords;
  return DecodeSdw(memory_->Read(addr), memory_->Read(addr + 1));
}

TrapCause Cpu::SupervisorRead(Segno segno, Wordno wordno, Ring effective_ring, Word* out) {
  const auto sdw = ReadSdw(segno);
  if (!sdw.has_value() || !sdw->present) {
    return TrapCause::kMissingSegment;
  }
  if (wordno >= sdw->bound) {
    return TrapCause::kBoundsViolation;
  }
  if (const auto decision = CheckRead(sdw->access, EffectiveRing(effective_ring));
      !decision.ok()) {
    return decision.cause;
  }
  AbsAddr addr = 0;
  if (const TrapCause cause = ResolveAddress(*sdw, segno, wordno, &addr);
      cause != TrapCause::kNone) {
    return cause;
  }
  *out = memory_->Read(addr);
  return TrapCause::kNone;
}

TrapCause Cpu::SupervisorWrite(Segno segno, Wordno wordno, Ring effective_ring, Word value) {
  const auto sdw = ReadSdw(segno);
  if (!sdw.has_value() || !sdw->present) {
    return TrapCause::kMissingSegment;
  }
  if (wordno >= sdw->bound) {
    return TrapCause::kBoundsViolation;
  }
  if (const auto decision = CheckWrite(sdw->access, EffectiveRing(effective_ring));
      !decision.ok()) {
    return decision.cause;
  }
  AbsAddr addr = 0;
  if (const TrapCause cause = ResolveAddress(*sdw, segno, wordno, &addr);
      cause != TrapCause::kNone) {
    return cause;
  }
  memory_->Write(addr, value);
  NoteStore(addr, sdw->access.flags.execute, segno);
  return TrapCause::kNone;
}

TrapCause Cpu::SupervisorReadRaw(Segno segno, Wordno wordno, Word* out) {
  const auto sdw = ReadSdw(segno);
  if (!sdw.has_value() || !sdw->present) {
    return TrapCause::kMissingSegment;
  }
  if (wordno >= sdw->bound) {
    return TrapCause::kBoundsViolation;
  }
  AbsAddr addr = 0;
  if (const TrapCause cause = ResolveAddress(*sdw, segno, wordno, &addr);
      cause != TrapCause::kNone) {
    return cause;
  }
  *out = memory_->Read(addr);
  return TrapCause::kNone;
}

TrapCause Cpu::SupervisorWriteRaw(Segno segno, Wordno wordno, Word value) {
  const auto sdw = ReadSdw(segno);
  if (!sdw.has_value() || !sdw->present) {
    return TrapCause::kMissingSegment;
  }
  if (wordno >= sdw->bound) {
    return TrapCause::kBoundsViolation;
  }
  AbsAddr addr = 0;
  if (const TrapCause cause = ResolveAddress(*sdw, segno, wordno, &addr);
      cause != TrapCause::kNone) {
    return cause;
  }
  memory_->Write(addr, value);
  NoteStore(addr, sdw->access.flags.execute, segno);
  return TrapCause::kNone;
}

// ---------------------------------------------------------------------------
// Instruction cycle
// ---------------------------------------------------------------------------

bool Cpu::Step() {
  if (trap_pending_) {
    return false;
  }
  state_at_fetch_ = regs_;
  tpr_ = Tpr{};
  current_ins_ = Instruction{};

  // Scheduling quantum (asynchronous condition checked between
  // instructions).
  if (timer_enabled_) {
    if (timer_ <= 0) {
      timer_enabled_ = false;
      RaiseTrap(TrapCause::kTimerRunout);
      return false;
    }
    --timer_;
  }

  // Fault-injection opportunities at the instruction boundary.
  if (fault_injector_ != nullptr) {
    size_t index = 0;
    if (fault_injector_->MaybeDropCacheEntry(cycles_, SdwCache::kEntries, &index)) {
      // The dropped register's verdict goes with it, as do any TLB
      // translations derived through the descriptor it held; the next
      // reference takes the slow path and re-walks the descriptor
      // segment, exactly as it would have without the fast path.
      if (const auto dropped = sdw_cache_.SegnoAtIndex(index); dropped.has_value()) {
        tlb_.InvalidateSegment(*dropped);
        ++counters_.tlb_invalidations;
      }
      sdw_cache_.InvalidateIndex(index);
      verdict_cache_.InvalidateSlot(index);
      ++counters_.verdict_invalidations;
    }
    if (fault_injector_->MaybeSpuriousMissingPage(cycles_, regs_.ipr.segno,
                                                  regs_.ipr.wordno)) {
      pending_fault_addr_ = SegAddr{regs_.ipr.segno, regs_.ipr.wordno};
      RaiseTrap(TrapCause::kMissingPage);
      return false;
    }
  }

  ++counters_.instructions;
  cycles_ += cycle_model_.instruction_base;

  Instruction ins;
  if (!FetchInstruction(&ins)) {
    return false;
  }
  current_ins_ = ins;

  const OpcodeInfo& info = GetOpcodeInfo(ins.opcode);

  // Privileged-instruction check. "Such instructions are designated as
  // privileged and will be executed by the processor only in ring 0."
  // (SVC extends to ring 1; see opcode table.)
  if (regs_.ipr.ring > info.max_ring) {
    RaiseTrap(TrapCause::kPrivilegedViolation);
    return false;
  }

  // Phase 2 (Figure 5): effective-address formation, for instructions
  // with a memory operand.
  const bool needs_ea = info.operand != OperandKind::kNone &&
                        info.operand != OperandKind::kImmediate;
  if (needs_ea && !FormEffectiveAddress(ins)) {
    return false;
  }

  // Advance the instruction counter before execution; transfers overwrite
  // it, and service traps save the advanced value.
  regs_.ipr.wordno = state_at_fetch_.ipr.wordno + 1;

  Execute(ins);

  if (trace_ != nullptr && !trap_pending_) {
    trace_->Record(TraceEvent{EventKind::kInstruction, cycles_, regs_.ipr.ring,
                              SegAddr{state_at_fetch_.ipr.segno, state_at_fetch_.ipr.wordno},
                              TrapCause::kNone, 0, {}});
  }
  return !trap_pending_;
}

// Figure 4: "Retrieval of next instruction to be executed." At the point
// the SDW for the segment containing the instruction is available, the
// ring of execution is matched against the execute bracket and the
// execute flag is checked.
bool Cpu::FetchInstruction(Instruction* ins) {
  const Ring ring = EffectiveRing(regs_.ipr.ring);

  // Fast path: a current verdict proves the SDW cache holds this segment
  // unchanged and that execution is permitted; a cached decode whose fill
  // address matches the address the slow path would compute proves the
  // word is the same one the slow path would fetch. For unpaged segments
  // that address is verdict base + wordno; for paged segments the TLB
  // supplies the frame (keyed on the verdict's base as the table base),
  // and the architectural walk is charged exactly as the slow path
  // charges it. Charge what the slow path charges on an SDW-cache hit
  // and skip the re-fetch and re-decode.
  if (const VerdictCache::Entry* v = FastVerdict(regs_.ipr.segno, ring);
      v != nullptr && (!checks_enabled_ || v->execute_ok) && regs_.ipr.wordno < v->bound) {
    AbsAddr expected = 0;
    bool have_addr = false;
    bool paged_hit = false;
    if (!v->paged) {
      expected = v->base + regs_.ipr.wordno;
      have_addr = true;
    } else if (TlbEnabled()) {
      if (const Tlb::Entry* t =
              tlb_.Lookup(regs_.ipr.segno, regs_.ipr.wordno >> kPageShift, v->base)) {
        expected = t->frame + (regs_.ipr.wordno & kPageMask);
        have_addr = true;
        paged_hit = true;
      }
    }
    const InsnCache::Entry* cached =
        have_addr ? insn_cache_.Lookup(regs_.ipr.segno, regs_.ipr.wordno) : nullptr;
    if (cached != nullptr && cached->addr == expected) {
      ++counters_.verdict_hits;
      ++counters_.insn_cache_hits;
      ++counters_.sdw_cache_hits;
      sdw_cache_.CountHit();
      if (checks_enabled_) {
        ++counters_.checks_fetch;
        cycles_ += cycle_model_.access_check;
      }
      if (paged_hit) {
        // The page-table walk the slow path would have performed.
        ++counters_.page_walks;
        cycles_ += cycle_model_.memory_ref;
        ++counters_.tlb_hits;
      }
      ++counters_.memory_reads;
      cycles_ += cycle_model_.memory_ref;
      *ins = cached->ins;
      return true;
    }
  }

  Sdw sdw;
  if (!FetchSdw(regs_.ipr.segno, &sdw)) {
    return false;
  }
  FillVerdict(regs_.ipr.segno, ring, sdw);
  if (checks_enabled_) {
    ++counters_.checks_fetch;
    cycles_ += cycle_model_.access_check;
    if (const auto decision = CheckExecute(sdw.access, ring); !decision.ok()) {
      RaiseTrap(decision.cause);
      return false;
    }
  }
  if (!CheckBounds(sdw, regs_.ipr.wordno)) {
    return false;
  }
  AbsAddr addr = 0;
  if (!ResolveOrFault(sdw, regs_.ipr.segno, regs_.ipr.wordno, &addr)) {
    return false;
  }
  ++counters_.memory_reads;
  cycles_ += cycle_model_.memory_ref;
  const Word word = memory_->Read(addr);
  if (!DecodeInstruction(word, ins)) {
    RaiseTrap(TrapCause::kIllegalOpcode);
    return false;
  }
  if (fast_path_enabled_ && sdw_cache_.enabled()) {
    // Paged decodes are cacheable too: the fill address is an absolute
    // frame address, and a later fast-path hit revalidates it against the
    // TLB's current translation for the page.
    ++counters_.insn_cache_misses;
    insn_cache_.Put(regs_.ipr.segno, regs_.ipr.wordno, addr, *ins);
  }
  return true;
}

// Figure 5: "Formation in TPR of effective address of instruction
// operand." TPR.RING accumulates, via max, every ring that could have
// influenced the address: the current ring of execution, the ring in a
// base pointer register, the ring in each indirect word, and the top of
// the write bracket (SDW.R1) of each segment an indirect word was fetched
// from.
bool Cpu::FormEffectiveAddress(const Instruction& ins) {
  tpr_.ring = regs_.ipr.ring;

  int64_t wordno;
  if (ins.pr_relative) {
    const PointerRegister& pr = regs_.pr[ins.prnum];
    tpr_.segno = pr.segno;
    wordno = static_cast<int64_t>(pr.wordno) + ins.offset;
    if (mode_ == ProtectionMode::kRingHardware) {
      tpr_.ring = MaxRing(tpr_.ring, pr.ring);
    }
  } else {
    tpr_.segno = regs_.ipr.segno;
    wordno = ins.offset;
  }
  if (ins.tag != 0) {
    wordno += static_cast<int64_t>(regs_.x[ins.tag]);
  }
  if (wordno < 0 || wordno > kMaxWordno) {
    RaiseTrap(TrapCause::kBoundsViolation);
    return false;
  }
  tpr_.wordno = static_cast<Wordno>(wordno);

  bool indirect = ins.indirect;
  unsigned depth = 0;
  while (indirect) {
    if (++depth > kMaxIndirectionDepth) {
      RaiseTrap(TrapCause::kIndirectionLimit);
      return false;
    }
    // "The capability to read an indirect word during effective address
    // formation must be validated before the indirect word is retrieved.
    // Validation is with respect to the value in TPR.RING at the time the
    // indirect word is encountered."
    const Ring ring = EffectiveRing(tpr_.ring);
    AbsAddr addr = 0;
    Ring sdw_r1 = 0;
    const VerdictCache::Entry* v = FastVerdict(tpr_.segno, ring);
    if (v != nullptr && (!checks_enabled_ || v->indirect_ok)) {
      // Fast path: skip the SDW fetch and the bracket comparison; the
      // indirect word itself is still read from the core store below.
      ++counters_.verdict_hits;
      ++counters_.sdw_cache_hits;
      sdw_cache_.CountHit();
      if (checks_enabled_) {
        ++counters_.checks_indirect;
        cycles_ += cycle_model_.access_check;
      }
      if (tpr_.wordno >= v->bound) {
        RaiseTrap(TrapCause::kBoundsViolation);
        return false;
      }
      if (!FastResolve(*v, tpr_.segno, tpr_.wordno, &addr)) {
        return false;
      }
      sdw_r1 = v->r1;
    } else {
      Sdw sdw;
      if (!FetchSdw(tpr_.segno, &sdw)) {
        return false;
      }
      FillVerdict(tpr_.segno, ring, sdw);
      if (checks_enabled_) {
        ++counters_.checks_indirect;
        cycles_ += cycle_model_.access_check;
        if (const auto decision = CheckIndirectRead(sdw.access, ring); !decision.ok()) {
          RaiseTrap(decision.cause);
          return false;
        }
      }
      if (!CheckBounds(sdw, tpr_.wordno)) {
        return false;
      }
      if (!ResolveOrFault(sdw, tpr_.segno, tpr_.wordno, &addr)) {
        return false;
      }
      sdw_r1 = sdw.access.brackets.r1;
    }
    ++counters_.memory_reads;
    ++counters_.indirect_words;
    cycles_ += cycle_model_.memory_ref;
    IndirectWord iw = DecodeIndirectWord(memory_->Read(addr));
    if (fault_injector_ != nullptr && !iw.fault) {
      fault_injector_->MaybeCorruptIndirectRing(cycles_, tpr_.segno, tpr_.wordno, &iw);
    }
    if (iw.fault) {
      // An unsnapped dynamic link: trap so the supervisor can resolve the
      // symbolic reference, overwrite this word with a snapped pointer,
      // and resume the disrupted instruction. The fault address locates
      // the link word itself.
      pending_fault_addr_ = SegAddr{tpr_.segno, tpr_.wordno};
      RaiseTrap(TrapCause::kLinkFault);
      return false;
    }
    if (mode_ == ProtectionMode::kRingHardware) {
      // "TPR.RING is updated with the larger of its current value, the
      // ring number in the indirect word (IND.RING), and the top of the
      // write bracket for the segment containing the indirect word
      // (SDW.R1)."
      tpr_.ring = MaxRing(tpr_.ring, iw.ring, sdw_r1);
    }
    tpr_.segno = iw.segno;
    tpr_.wordno = iw.wordno;
    indirect = iw.indirect;
  }
  return true;
}

// Figure 6: instructions which read or write their operands.
bool Cpu::ReadOperand(Word* out) {
  const Ring ring = EffectiveRing(tpr_.ring);
  if (const VerdictCache::Entry* v = FastVerdict(tpr_.segno, ring);
      v != nullptr && (!checks_enabled_ || v->read_ok)) {
    ++counters_.verdict_hits;
    ++counters_.sdw_cache_hits;
    sdw_cache_.CountHit();
    if (checks_enabled_) {
      ++counters_.checks_read;
      cycles_ += cycle_model_.access_check;
    }
    if (tpr_.wordno >= v->bound) {
      RaiseTrap(TrapCause::kBoundsViolation);
      return false;
    }
    AbsAddr addr = 0;
    if (!FastResolve(*v, tpr_.segno, tpr_.wordno, &addr)) {
      return false;
    }
    ++counters_.memory_reads;
    cycles_ += cycle_model_.memory_ref;
    *out = memory_->Read(addr);
    return true;
  }

  Sdw sdw;
  if (!FetchSdw(tpr_.segno, &sdw)) {
    return false;
  }
  FillVerdict(tpr_.segno, ring, sdw);
  if (checks_enabled_) {
    ++counters_.checks_read;
    cycles_ += cycle_model_.access_check;
    if (const auto decision = CheckRead(sdw.access, ring); !decision.ok()) {
      RaiseTrap(decision.cause);
      return false;
    }
  }
  if (!CheckBounds(sdw, tpr_.wordno)) {
    return false;
  }
  AbsAddr addr = 0;
  if (!ResolveOrFault(sdw, tpr_.segno, tpr_.wordno, &addr)) {
    return false;
  }
  ++counters_.memory_reads;
  cycles_ += cycle_model_.memory_ref;
  *out = memory_->Read(addr);
  return true;
}

bool Cpu::WriteOperand(Word value) {
  const Ring ring = EffectiveRing(tpr_.ring);
  if (const VerdictCache::Entry* v = FastVerdict(tpr_.segno, ring);
      v != nullptr && (!checks_enabled_ || v->write_ok)) {
    ++counters_.verdict_hits;
    ++counters_.sdw_cache_hits;
    sdw_cache_.CountHit();
    if (checks_enabled_) {
      ++counters_.checks_write;
      cycles_ += cycle_model_.access_check;
    }
    if (tpr_.wordno >= v->bound) {
      RaiseTrap(TrapCause::kBoundsViolation);
      return false;
    }
    AbsAddr addr = 0;
    if (!FastResolve(*v, tpr_.segno, tpr_.wordno, &addr)) {
      return false;
    }
    ++counters_.memory_writes;
    cycles_ += cycle_model_.memory_ref;
    memory_->Write(addr, value);
    NoteStore(addr, v->flags_execute, tpr_.segno);
    return true;
  }

  Sdw sdw;
  if (!FetchSdw(tpr_.segno, &sdw)) {
    return false;
  }
  FillVerdict(tpr_.segno, ring, sdw);
  if (checks_enabled_) {
    ++counters_.checks_write;
    cycles_ += cycle_model_.access_check;
    if (const auto decision = CheckWrite(sdw.access, ring); !decision.ok()) {
      RaiseTrap(decision.cause);
      return false;
    }
  }
  if (!CheckBounds(sdw, tpr_.wordno)) {
    return false;
  }
  AbsAddr addr = 0;
  if (!ResolveOrFault(sdw, tpr_.segno, tpr_.wordno, &addr)) {
    return false;
  }
  ++counters_.memory_writes;
  cycles_ += cycle_model_.memory_ref;
  memory_->Write(addr, value);
  NoteStore(addr, sdw.access.flags.execute, tpr_.segno);
  return true;
}

bool Cpu::FastResolve(const VerdictCache::Entry& v, Segno segno, Wordno wordno, AbsAddr* out) {
  if (!v.paged) {
    *out = v.base + wordno;
    return true;
  }
  // Paged: the page-table walk is architectural, so it is performed (and
  // charged) exactly as in ResolveAddress — only the SDW fetch and the
  // bracket comparison were skipped. The walk itself may be answered by
  // the TLB; the verdict's base is the table base the walk is keyed on.
  const TrapCause cause = WalkPageTable(v.base, segno, wordno, out);
  if (cause != TrapCause::kNone) {
    RaiseTrap(cause);
    return false;
  }
  return true;
}

void Cpu::NoteStore(AbsAddr addr, bool target_executable, Segno segno) {
  if (target_executable) {
    // Self-modifying (or link-snapped) code: drop any cached decodes for
    // the segment so the next fetch re-reads the stored word.
    insn_cache_.InvalidateSegment(segno);
    ++counters_.insn_cache_invalidations;
  }
  // The store may have landed on a page-table word some TLB entry
  // memoized; the snoop drops exactly those translations.
  if (const size_t dropped = tlb_.NoteStore(addr); dropped != 0) {
    counters_.tlb_invalidations += dropped;
  }
  // A store that lands inside the descriptor segment edits an SDW behind
  // the processor's associative registers; treat it exactly like a
  // supervisor InvalidateSdw for the segment whose descriptor pair the
  // word belongs to.
  const AbsAddr dseg_base = regs_.dbr.base;
  if (addr >= dseg_base &&
      addr < dseg_base + static_cast<AbsAddr>(regs_.dbr.bound) * kSdwPairWords) {
    InvalidateSdw(static_cast<Segno>((addr - dseg_base) / kSdwPairWords));
  }
}

// Figure 7: transfer instructions other than CALL and RETURN. The advance
// check catches the violation "while it is still possible to identify the
// instruction which made the illegal transfer"; a raised effective ring is
// rejected because these transfers cannot change the ring of execution.
void Cpu::ExecuteTransfer() {
  const Ring exec_ring = EffectiveRing(regs_.ipr.ring);
  const Ring effective =
      EffectiveRing(mode_ == ProtectionMode::kRingHardware ? tpr_.ring : regs_.ipr.ring);
  if (const VerdictCache::Entry* v = FastVerdict(tpr_.segno, exec_ring);
      v != nullptr && (!checks_enabled_ || (effective == exec_ring && v->execute_ok))) {
    ++counters_.verdict_hits;
    ++counters_.sdw_cache_hits;
    sdw_cache_.CountHit();
    if (checks_enabled_) {
      ++counters_.checks_transfer;
      cycles_ += cycle_model_.access_check;
    }
    if (tpr_.wordno >= v->bound) {
      RaiseTrap(TrapCause::kBoundsViolation);
      return;
    }
    regs_.ipr.segno = tpr_.segno;
    regs_.ipr.wordno = tpr_.wordno;
    return;
  }

  Sdw sdw;
  if (!FetchSdw(tpr_.segno, &sdw)) {
    return;
  }
  FillVerdict(tpr_.segno, exec_ring, sdw);
  if (checks_enabled_) {
    ++counters_.checks_transfer;
    cycles_ += cycle_model_.access_check;
    if (const auto decision = CheckTransfer(sdw.access, exec_ring, effective); !decision.ok()) {
      RaiseTrap(decision.cause);
      return;
    }
  }
  if (!CheckBounds(sdw, tpr_.wordno)) {
    return;
  }
  regs_.ipr.segno = tpr_.segno;
  regs_.ipr.wordno = tpr_.wordno;
}

// Figure 8: the CALL instruction.
void Cpu::ExecuteCall() {
  if (mode_ == ProtectionMode::kFlags645) {
    // The 645-style base has no call hardware; rings are crossed by MME
    // traps handled in software (src/b645).
    RaiseTrap(TrapCause::kIllegalOpcode);
    return;
  }
  Sdw sdw;
  if (!FetchSdw(tpr_.segno, &sdw)) {
    return;
  }
  ++counters_.checks_call;
  cycles_ += cycle_model_.access_check;

  const Ring old_ring = regs_.ipr.ring;
  const bool same_segment = tpr_.segno == state_at_fetch_.ipr.segno;

  TransferOutcome outcome = TransferOutcome::Enter(old_ring, false);
  if (checks_enabled_) {
    outcome = ResolveCall(sdw.access, old_ring, tpr_.ring, tpr_.wordno, same_segment);
    if (!outcome.ok()) {
      RaiseTrap(outcome.cause);
      return;
    }
  }
  if (!CheckBounds(sdw, tpr_.wordno)) {
    return;
  }

  const Ring new_ring = outcome.new_ring;
  if (outcome.ring_changed) {
    ++counters_.calls_downward;
  } else {
    ++counters_.calls_same_ring;
  }

  // Stack rule (Figure 8 footnote): same-ring calls keep the current stack
  // segment (from the stack pointer register); ring-changing calls use the
  // standard stack segment DBR.stack_base + new ring.
  const uint64_t stack_segno = SelectStackSegment(
      outcome.ring_changed, regs_.pr[kPrStack].segno, regs_.dbr.stack_base, new_ring);
  regs_.pr[kPrStackBase] =
      PointerRegister{new_ring, static_cast<Segno>(stack_segno), 0};

  // Return pointer (see DESIGN.md): the old ring/segno/wordno+1. Its ring
  // field is >= the new ring, preserving the PR-ring invariant.
  regs_.pr[kPrReturn] = PointerRegister{old_ring, state_at_fetch_.ipr.segno,
                                        state_at_fetch_.ipr.wordno + 1};

  if (outcome.ring_changed && trace_ != nullptr) {
    trace_->Record(TraceEvent{EventKind::kRingSwitch, cycles_, old_ring,
                              SegAddr{tpr_.segno, tpr_.wordno}, TrapCause::kNone, new_ring, {}});
  }

  regs_.ipr = Ipr{new_ring, tpr_.segno, tpr_.wordno};
}

// Figure 9: the RETURN instruction. "The ring to which the return is made
// is specified by the effective ring portion of the effective address....
// In the case that the return is upward, the ring number fields in all
// pointer registers are replaced with the larger of their current values
// and the new ring of execution."
void Cpu::ExecuteReturn() {
  if (mode_ == ProtectionMode::kFlags645) {
    RaiseTrap(TrapCause::kIllegalOpcode);
    return;
  }
  Sdw sdw;
  if (!FetchSdw(tpr_.segno, &sdw)) {
    return;
  }
  ++counters_.checks_return;
  cycles_ += cycle_model_.access_check;

  const Ring old_ring = regs_.ipr.ring;
  TransferOutcome outcome = TransferOutcome::Enter(old_ring, false);
  if (checks_enabled_) {
    outcome = ResolveReturn(sdw.access, old_ring, tpr_.ring);
    if (!outcome.ok()) {
      RaiseTrap(outcome.cause);
      return;
    }
  }
  if (!CheckBounds(sdw, tpr_.wordno)) {
    return;
  }

  const Ring new_ring = outcome.new_ring;
  if (new_ring > old_ring) {
    ++counters_.returns_upward;
    for (PointerRegister& pr : regs_.pr) {
      pr.ring = MaxRing(pr.ring, new_ring);
    }
    if (trace_ != nullptr) {
      trace_->Record(TraceEvent{EventKind::kRingSwitch, cycles_, old_ring,
                                SegAddr{tpr_.segno, tpr_.wordno}, TrapCause::kNone, new_ring, {}});
    }
  } else {
    ++counters_.returns_same_ring;
  }

  regs_.ipr = Ipr{new_ring, tpr_.segno, tpr_.wordno};
}

void Cpu::Execute(const Instruction& ins) {
  const auto signed_a = [this]() { return static_cast<int64_t>(regs_.a); };
  Word value = 0;
  switch (ins.opcode) {
    case Opcode::kNop:
      break;

    case Opcode::kLda:
      if (ReadOperand(&value)) {
        regs_.a = value;
      }
      break;
    case Opcode::kLdq:
      if (ReadOperand(&value)) {
        regs_.q = value;
      }
      break;
    case Opcode::kLdx:
      if (ReadOperand(&value)) {
        regs_.x[ins.reg] = static_cast<uint32_t>(value) & kIndexMask;
      }
      break;

    case Opcode::kSta:
      WriteOperand(regs_.a);
      break;
    case Opcode::kStq:
      WriteOperand(regs_.q);
      break;
    case Opcode::kStx:
      WriteOperand(regs_.x[ins.reg]);
      break;
    case Opcode::kStz:
      WriteOperand(0);
      break;

    case Opcode::kLdai:
      regs_.a = static_cast<Word>(static_cast<int64_t>(ins.offset));
      break;
    case Opcode::kLdqi:
      regs_.q = static_cast<Word>(static_cast<int64_t>(ins.offset));
      break;
    case Opcode::kLdxi:
      regs_.x[ins.reg] = static_cast<uint32_t>(ins.offset) & kIndexMask;
      break;
    case Opcode::kAdai:
      regs_.a += static_cast<Word>(static_cast<int64_t>(ins.offset));
      break;

    case Opcode::kAda:
      if (ReadOperand(&value)) {
        regs_.a += value;
      }
      break;
    case Opcode::kSba:
      if (ReadOperand(&value)) {
        regs_.a -= value;
      }
      break;
    case Opcode::kMpy:
      if (ReadOperand(&value)) {
        regs_.a *= value;
      }
      break;
    case Opcode::kAna:
      if (ReadOperand(&value)) {
        regs_.a &= value;
      }
      break;
    case Opcode::kOra:
      if (ReadOperand(&value)) {
        regs_.a |= value;
      }
      break;
    case Opcode::kEra:
      if (ReadOperand(&value)) {
        regs_.a ^= value;
      }
      break;

    case Opcode::kAls:
      regs_.a = ins.offset >= 64 ? 0 : regs_.a << (ins.offset & 63);
      break;
    case Opcode::kArs:
      regs_.a = ins.offset >= 64 ? 0 : regs_.a >> (ins.offset & 63);
      break;
    case Opcode::kNega:
      regs_.a = ~regs_.a + 1;
      break;
    case Opcode::kXaq:
      std::swap(regs_.a, regs_.q);
      break;

    case Opcode::kAos:
      if (ReadOperand(&value)) {
        WriteOperand(value + 1);
      }
      break;

    case Opcode::kEpp:
      // EAP-type (Figure 7): "instructions which load the RING, SEGNO and
      // WORDNO fields of PRn with the corresponding fields of TPR. The
      // operand is not referenced, so no access validation is required."
      regs_.pr[ins.reg] = PointerRegister{tpr_.ring, tpr_.segno, tpr_.wordno};
      break;

    case Opcode::kSpp: {
      // Store PRn as an indirect word. The stored RING field is the PR's
      // ring, so an argument address saved to memory keeps its validation
      // level ("If PR1 is then stored as an indirect word, this effective
      // ring is put into the RING field of the indirect word").
      const PointerRegister& pr = regs_.pr[ins.reg];
      WriteOperand(EncodeIndirectWord(IndirectWord{pr.ring, false, pr.segno, pr.wordno}));
      break;
    }

    case Opcode::kTra:
      ExecuteTransfer();
      break;
    case Opcode::kTze:
      if (regs_.a == 0) {
        ExecuteTransfer();
      }
      break;
    case Opcode::kTnz:
      if (regs_.a != 0) {
        ExecuteTransfer();
      }
      break;
    case Opcode::kTmi:
      if (signed_a() < 0) {
        ExecuteTransfer();
      }
      break;
    case Opcode::kTpl:
      if (signed_a() >= 0) {
        ExecuteTransfer();
      }
      break;

    case Opcode::kCall:
      ExecuteCall();
      break;
    case Opcode::kRet:
      ExecuteReturn();
      break;

    case Opcode::kMme:
      RaiseServiceTrap(TrapCause::kMasterModeEntry, ins.offset);
      break;
    case Opcode::kSvc:
      RaiseServiceTrap(TrapCause::kSupervisorService, ins.offset);
      break;

    case Opcode::kLdbr: {
      // Privileged: load the DBR from the operand pair (base word and
      // bound/stack word) and flush the descriptor cache.
      Word w0 = 0;
      Word w1 = 0;
      if (!ReadOperand(&w0)) {
        break;
      }
      ++tpr_.wordno;
      if (!ReadOperand(&w1)) {
        break;
      }
      DbrValue dbr;
      dbr.base = ExtractBits(w0, 0, 40);
      dbr.bound = static_cast<Segno>(ExtractBits(w1, 0, kSegnoBits));
      dbr.stack_base = static_cast<Segno>(ExtractBits(w1, kSegnoBits, kSegnoBits));
      SetDbr(dbr);
      break;
    }

    case Opcode::kRett:
      // Guest-code RETT is not used in this reproduction (trap handling is
      // dispatched to the C++ supervisor, which resumes via Cpu::Rett);
      // executing it in guest ring-0 code is an error.
      RaiseTrap(TrapCause::kIllegalOpcode);
      break;

    case Opcode::kSio:
      if (ReadOperand(&value)) {
        if (sio_handler_) {
          sio_handler_(ins.reg, value);
        }
      }
      break;

    case Opcode::kHlt:
      RaiseServiceTrap(TrapCause::kHalt, 0);
      break;

    case Opcode::kNumOpcodes:
      RaiseTrap(TrapCause::kIllegalOpcode);
      break;
  }
}

}  // namespace rings

#include "src/cpu/cpu.h"

#include "src/base/bitfield.h"
#include "src/mem/page_table.h"

namespace rings {

namespace {

constexpr uint32_t kIndexMask = (uint32_t{1} << kWordnoBits) - 1;

}  // namespace

Cpu::Cpu(PhysicalMemory* memory, CycleModel cycle_model)
    : memory_(memory), cycle_model_(cycle_model) {}

// ---------------------------------------------------------------------------
// Trap machinery
// ---------------------------------------------------------------------------

void Cpu::RaiseTrap(TrapCause cause, int64_t code) {
  trap_pending_ = true;
  trap_state_.cause = cause;
  // The saved state must be the register file as of the instruction fetch,
  // with the IPR addressing the disrupted instruction. Only the IPR can
  // differ from the live registers at a trap-raising point (the wordno
  // advance, or a transfer target): every handler validates and raises
  // BEFORE it modifies any other architectural register, so the live file
  // with the at-fetch IPR restored IS the at-fetch state. This keeps the
  // per-instruction boundary down to a 3-word IPR capture instead of a
  // full register-file copy.
  trap_state_.regs = regs_;
  trap_state_.regs.ipr = ipr_at_fetch_;
  trap_state_.tpr = tpr_;
  trap_state_.instruction = current_ins_;
  trap_state_.code = code;
  trap_state_.fault_addr = pending_fault_addr_;
  pending_fault_addr_ = SegAddr{};
  counters_.CountTrap(cause);
  cycles_ += cycle_model_.trap;
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Record(TraceEvent{EventKind::kTrap, cycles_, ipr_at_fetch_.ring,
                              SegAddr{ipr_at_fetch_.segno, ipr_at_fetch_.wordno},
                              cause, 0, {}});
  }
}

void Cpu::RaiseServiceTrap(TrapCause cause, int64_t code) {
  // The saved IPR must address the next instruction so that RETT resumes
  // after the service request, not at it.
  RaiseTrap(cause, code);
  trap_state_.regs.ipr.wordno = ipr_at_fetch_.wordno + 1;
}

TrapState Cpu::TakeTrap() {
  trap_pending_ = false;
  return trap_state_;
}

void Cpu::Rett(const RegisterFile& state) {
  const bool dbr_changed = !(state.dbr == regs_.dbr);
  regs_ = state;
  trap_pending_ = false;
  cycles_ += cycle_model_.rett;
  if (dbr_changed) {
    // The flush bumps the SDW-cache epoch, retiring every verdict; the
    // decoded-instruction cache, the TLB, and the block cache must also
    // go, since the same segment numbers may now name different segments.
    sdw_cache_.Flush();
    insn_cache_.Flush();
    tlb_.Flush();
    block_cache_.Flush();
  }
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Record(TraceEvent{EventKind::kTrapReturn, cycles_, regs_.ipr.ring,
                              SegAddr{regs_.ipr.segno, regs_.ipr.wordno}, TrapCause::kNone, 0,
                              {}});
  }
}

void Cpu::SetDbr(const DbrValue& dbr) {
  regs_.dbr = dbr;
  sdw_cache_.Flush();
  insn_cache_.Flush();
  tlb_.Flush();
  block_cache_.Flush();
}

void Cpu::InjectTrap(TrapCause cause, int64_t code) {
  ipr_at_fetch_ = regs_.ipr;
  tpr_ = Tpr{};
  current_ins_ = Instruction{};
  RaiseTrap(cause, code);
}

// ---------------------------------------------------------------------------
// Memory and descriptor access
// ---------------------------------------------------------------------------

bool Cpu::FetchSdw(Segno segno, Sdw* out) {
  if (auto cached = sdw_cache_.Lookup(segno); cached.has_value()) {
    ++counters_.sdw_cache_hits;
    *out = *cached;
    if (!out->present) {
      RaiseTrap(TrapCause::kMissingSegment);
      return false;
    }
    return true;
  }
  ++counters_.sdw_fetches;
  cycles_ += cycle_model_.sdw_fetch;
  if (segno >= regs_.dbr.bound) {
    RaiseTrap(TrapCause::kMissingSegment);
    return false;
  }
  const AbsAddr addr = regs_.dbr.base + static_cast<AbsAddr>(segno) * kSdwPairWords;
  Sdw sdw = DecodeSdw(memory_->Read(addr), memory_->Read(addr + 1));
  if (fault_injector_ != nullptr) {
    // Injected bit damage lands in the fetched copy (and thus the cache),
    // never in the descriptor segment itself: the authoritative SDW stays
    // intact, so the supervisor can detect and recover from the mismatch.
    if (fault_injector_->MaybeCorruptSdw(cycles_, segno, &sdw)) {
      // Translations memoized for this segment were derived through the
      // clean descriptor; they must not survive alongside the damaged
      // copy about to be cached.
      tlb_.InvalidateSegment(segno);
      ++counters_.tlb_invalidations;
    }
  }
  // Whatever the insert evicts from this slot, the matching verdict slot
  // can no longer vouch for it (verdict validity implies SDW residency),
  // and neither can any crossing memo whose target mapped there.
  verdict_cache_.InvalidateSlot(segno % SdwCache::kEntries);
  crossing_cache_.InvalidateSdwSlot(segno % SdwCache::kEntries);
  // A running block's per-op charges assume its segment's SDW stays
  // resident; this insert may have just evicted it (or cached a damaged
  // copy), so any in-flight block must bail and revalidate.
  block_cache_.BumpVersion();
  sdw_cache_.Insert(segno, sdw);
  if (!sdw.present) {
    RaiseTrap(TrapCause::kMissingSegment);
    return false;
  }
  *out = sdw;
  return true;
}

bool Cpu::CheckBounds(const Sdw& sdw, Wordno wordno) {
  if (wordno >= sdw.bound) {
    RaiseTrap(TrapCause::kBoundsViolation);
    return false;
  }
  return true;
}

// Final address resolution. Unpaged segments are contiguous; paged
// segments cost one PTW fetch per reference ("paging is also taken into
// account by the address translation logic, but is totally transparent to
// an executing machine language program").
TrapCause Cpu::ResolveAddress(const Sdw& sdw, Segno segno, Wordno wordno, AbsAddr* out) {
  if (!sdw.paged) {
    *out = sdw.base + wordno;
    return TrapCause::kNone;
  }
  return WalkPageTable(sdw.base, segno, wordno, out);
}

TrapCause Cpu::WalkPageTable(AbsAddr table_base, Segno segno, Wordno wordno, AbsAddr* out) {
  // The walk's simulated cost is charged unconditionally: whether the
  // translation comes from the TLB or from the PTW read below, the
  // simulated machine performed one page-table reference.
  ++counters_.page_walks;
  cycles_ += cycle_model_.memory_ref;
  const uint64_t pageno = wordno >> kPageShift;
  if (TlbEnabled()) {
    if (const Tlb::Entry* t = tlb_.Lookup(segno, pageno, table_base)) {
      ++counters_.tlb_hits;
      *out = t->frame + (wordno & kPageMask);
      return TrapCause::kNone;
    }
    ++counters_.tlb_misses;
  }
  const Ptw ptw = DecodePtw(memory_->Read(table_base + pageno));
  if (!ptw.present) {
    pending_fault_addr_ = SegAddr{segno, wordno};
    return TrapCause::kMissingPage;
  }
  if (TlbEnabled()) {
    // Only present pages are memoized, and only after the Read above
    // succeeded — so a later TLB hit can never skip a read the slow path
    // would have faulted on, and missing-page traps always re-walk.
    tlb_.Fill(segno, pageno, table_base, ptw.frame);
  }
  *out = ptw.frame + (wordno & kPageMask);
  return TrapCause::kNone;
}

bool Cpu::ResolveOrFault(const Sdw& sdw, Segno segno, Wordno wordno, AbsAddr* out) {
  const TrapCause cause = ResolveAddress(sdw, segno, wordno, out);
  if (cause != TrapCause::kNone) {
    RaiseTrap(cause);
    return false;
  }
  return true;
}

std::optional<Sdw> Cpu::ReadSdw(Segno segno) const {
  if (segno >= regs_.dbr.bound) {
    return std::nullopt;
  }
  const AbsAddr addr = regs_.dbr.base + static_cast<AbsAddr>(segno) * kSdwPairWords;
  return DecodeSdw(memory_->Read(addr), memory_->Read(addr + 1));
}

TrapCause Cpu::SupervisorRead(Segno segno, Wordno wordno, Ring effective_ring, Word* out) {
  const auto sdw = ReadSdw(segno);
  if (!sdw.has_value() || !sdw->present) {
    return TrapCause::kMissingSegment;
  }
  if (wordno >= sdw->bound) {
    return TrapCause::kBoundsViolation;
  }
  if (const auto decision = CheckRead(sdw->access, EffectiveRing(effective_ring));
      !decision.ok()) {
    return decision.cause;
  }
  AbsAddr addr = 0;
  if (const TrapCause cause = ResolveAddress(*sdw, segno, wordno, &addr);
      cause != TrapCause::kNone) {
    return cause;
  }
  *out = memory_->Read(addr);
  return TrapCause::kNone;
}

TrapCause Cpu::SupervisorWrite(Segno segno, Wordno wordno, Ring effective_ring, Word value) {
  const auto sdw = ReadSdw(segno);
  if (!sdw.has_value() || !sdw->present) {
    return TrapCause::kMissingSegment;
  }
  if (wordno >= sdw->bound) {
    return TrapCause::kBoundsViolation;
  }
  if (const auto decision = CheckWrite(sdw->access, EffectiveRing(effective_ring));
      !decision.ok()) {
    return decision.cause;
  }
  AbsAddr addr = 0;
  if (const TrapCause cause = ResolveAddress(*sdw, segno, wordno, &addr);
      cause != TrapCause::kNone) {
    return cause;
  }
  memory_->Write(addr, value);
  NoteStore(addr, sdw->access.flags.execute, segno);
  return TrapCause::kNone;
}

TrapCause Cpu::SupervisorReadRaw(Segno segno, Wordno wordno, Word* out) {
  const auto sdw = ReadSdw(segno);
  if (!sdw.has_value() || !sdw->present) {
    return TrapCause::kMissingSegment;
  }
  if (wordno >= sdw->bound) {
    return TrapCause::kBoundsViolation;
  }
  AbsAddr addr = 0;
  if (const TrapCause cause = ResolveAddress(*sdw, segno, wordno, &addr);
      cause != TrapCause::kNone) {
    return cause;
  }
  *out = memory_->Read(addr);
  return TrapCause::kNone;
}

TrapCause Cpu::SupervisorWriteRaw(Segno segno, Wordno wordno, Word value) {
  const auto sdw = ReadSdw(segno);
  if (!sdw.has_value() || !sdw->present) {
    return TrapCause::kMissingSegment;
  }
  if (wordno >= sdw->bound) {
    return TrapCause::kBoundsViolation;
  }
  AbsAddr addr = 0;
  if (const TrapCause cause = ResolveAddress(*sdw, segno, wordno, &addr);
      cause != TrapCause::kNone) {
    return cause;
  }
  memory_->Write(addr, value);
  NoteStore(addr, sdw->access.flags.execute, segno);
  return TrapCause::kNone;
}

// ---------------------------------------------------------------------------
// Instruction cycle
// ---------------------------------------------------------------------------

bool Cpu::Step() {
  if (trap_pending_) {
    return false;
  }
  if (!InstructionBoundary()) {
    return false;
  }
  return StepBody();
}

bool Cpu::InstructionBoundary() {
  ipr_at_fetch_ = regs_.ipr;
  tpr_ = Tpr{};
  current_ins_ = Instruction{};

  // Scheduling quantum (asynchronous condition checked between
  // instructions).
  if (timer_enabled_) {
    if (timer_ <= 0) {
      timer_enabled_ = false;
      RaiseTrap(TrapCause::kTimerRunout);
      return false;
    }
    --timer_;
  }

  // Fault-injection opportunities at the instruction boundary (split out
  // so the injector-free boundary inlines into the per-op loops).
  if (fault_injector_ != nullptr) {
    return BoundaryInjectionHooks();
  }
  return true;
}

bool Cpu::BoundaryInjectionHooks() {
  size_t index = 0;
  if (fault_injector_->MaybeDropCacheEntry(cycles_, SdwCache::kEntries, &index)) {
    // The dropped register's verdict goes with it, as do any TLB
    // translations and decoded blocks derived through the descriptor it
    // held; the next reference takes the slow path and re-walks the
    // descriptor segment, exactly as it would have without the fast
    // path.
    if (const auto dropped = sdw_cache_.SegnoAtIndex(index); dropped.has_value()) {
      tlb_.InvalidateSegment(*dropped);
      ++counters_.tlb_invalidations;
      counters_.block_invalidations += block_cache_.InvalidateSegment(*dropped);
    }
    sdw_cache_.InvalidateIndex(index);
    verdict_cache_.InvalidateSlot(index);
    crossing_cache_.InvalidateSdwSlot(index);
    ++counters_.verdict_invalidations;
  }
  if (fault_injector_->MaybeSpuriousMissingPage(cycles_, regs_.ipr.segno, regs_.ipr.wordno)) {
    pending_fault_addr_ = SegAddr{regs_.ipr.segno, regs_.ipr.wordno};
    RaiseTrap(TrapCause::kMissingPage);
    return false;
  }
  return true;
}

bool Cpu::StepBody() {
  ++counters_.instructions;
  cycles_ += cycle_model_.instruction_base;

  Instruction ins;
  if (!FetchInstruction(&ins)) {
    return false;
  }
  current_ins_ = ins;

  const OpcodeInfo& info = GetOpcodeInfo(ins.opcode);

  // Privileged-instruction check. "Such instructions are designated as
  // privileged and will be executed by the processor only in ring 0."
  // (SVC extends to ring 1; see opcode table.)
  if (regs_.ipr.ring > info.max_ring) {
    RaiseTrap(TrapCause::kPrivilegedViolation);
    return false;
  }

  // Phase 2 (Figure 5): effective-address formation, for instructions
  // with a memory operand.
  const bool needs_ea = info.operand != OperandKind::kNone &&
                        info.operand != OperandKind::kImmediate;
  if (needs_ea && !FormEffectiveAddress(ins)) {
    return false;
  }

  // Advance the instruction counter before execution; transfers overwrite
  // it, and service traps save the advanced value.
  regs_.ipr.wordno = ipr_at_fetch_.wordno + 1;

  Execute(ins);

  if (trace_ != nullptr && trace_->enabled() && !trap_pending_) {
    trace_->Record(TraceEvent{EventKind::kInstruction, cycles_, regs_.ipr.ring,
                              SegAddr{ipr_at_fetch_.segno, ipr_at_fetch_.wordno},
                              TrapCause::kNone, 0, {}});
  }
  return !trap_pending_;
}

// ---------------------------------------------------------------------------
// Superblock engine
// ---------------------------------------------------------------------------
//
// StepBlock is the run loops' entry point: it executes a whole decoded
// straight-line block per dispatch instead of re-entering Step per
// instruction. Each op runs the same instruction boundary (timer, fault
// hooks, trap-capture state) and charges exactly what the per-instruction
// path charges on a verdict + decode hit, which — by the verdict cache's
// invariant — is exactly what the slow path charges with an SDW-cache
// hit. Anything a block cannot vouch for bails to StepBody, the identical
// per-instruction path, after the boundary it already consumed.

bool Cpu::StepBlock(uint64_t cycle_bound) {
  if (trap_pending_) {
    return false;
  }
  if (!InstructionBoundary()) {
    return false;
  }
  if (!block_engine_enabled_ || !fast_path_enabled_ || !sdw_cache_.enabled()) {
    return StepBody();
  }
  BlockCache::Block* b = ProbeOrBuildBlock();
  if (b == nullptr) {
    return StepBody();
  }

  // The outer loop is the chaining engine (see DESIGN.md §7): after a
  // block completes trap-free inside the cycle bound, the chain point
  // either follows the block's patched successor link (validated by its
  // version stamp plus a key compare against the live IPR) or runs the
  // dispatch preamble once and patches the link for next time. Either way
  // execution stays in this frame block after block instead of returning
  // to the run loop per block; a follow additionally skips the verdict
  // probe, the cache hash, and the BlockCurrent revalidation.
  for (;;) {
    const uint64_t version = block_cache_.version();
    for (uint16_t i = 0; i < b->count; ++i) {
      if (i != 0) {
        // Boundary conditions the caller's run loop services between
        // instructions: its cycle budget / due I/O (cycle_bound) and a
        // latched physical-store fault. Stop *before* consuming this op's
        // instruction boundary so no fault-injection opportunity is taken
        // that the per-instruction loop would not have taken.
        if (cycles_ >= cycle_bound || memory_->fault_pending()) {
          return true;
        }
        if (!InstructionBoundary()) {
          return false;
        }
        // Once the boundary ran we are committed to exactly one
        // instruction; if an invalidation landed under the block (SDW
        // eviction or drop, store into this code, descriptor edit), take
        // it through the per-instruction path instead.
        if (block_cache_.version() != version) {
          ++counters_.block_bailouts;
          return StepBody();
        }
      }
      const BlockCache::Op& op = b->ops[i];
      if (b->paged) {
        // Paged fetches revalidate through the live TLB every op: a moved
        // page, snooped PTW, or evicted translation makes the comparison
        // fail and the op re-fetches on the slow path (which re-walks and,
        // if the page vanished, takes the same missing-page trap the
        // per-instruction path would take).
        const Tlb::Entry* t = tlb_.Lookup(b->segno, op.wordno >> kPageShift, b->base);
        if (t == nullptr || t->frame + (op.wordno & kPageMask) != op.addr) {
          ++counters_.block_bailouts;
          return StepBody();
        }
      }
      // The fetch charges of the per-instruction fast path (identical to
      // the slow path taken with an SDW-cache hit). The cycle portion is
      // the block's precomputed per-op charge — one add for the
      // instruction base, the fetch check, the page walk, and the fetch
      // read together.
      cycles_ += b->op_charge;
      ++counters_.instructions;
      ++counters_.block_ops;
      ++counters_.verdict_hits;
      ++counters_.insn_cache_hits;
      ++counters_.sdw_cache_hits;
      sdw_cache_.CountHit();
      if (checks_enabled_) {
        ++counters_.checks_fetch;
      }
      if (b->paged) {
        // The page-table walk the slow path would have performed.
        ++counters_.page_walks;
        ++counters_.tlb_hits;
      }
      ++counters_.memory_reads;
      current_ins_ = op.ins;
      if (op.needs_ea && !FormEffectiveAddress(op.ins)) {
        return false;
      }
      regs_.ipr.wordno = op.wordno + 1;
      Execute(op.ins);
      if (block_call_ablation_ && op.ins.opcode == Opcode::kCall) {
        ++cycles_;  // deliberately broken (fuzz-oracle test hook); see cpu.h
      }
      if (trap_pending_) {
        return false;
      }
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->Record(TraceEvent{EventKind::kInstruction, cycles_, regs_.ipr.ring,
                                  SegAddr{ipr_at_fetch_.segno, ipr_at_fetch_.wordno},
                                  TrapCause::kNone, 0, {}});
      }
    }

    // Chain point: the block completed without a trap, so regs_.ipr names
    // the architectural successor (transfer target or fall-through).
    if (!chain_enabled_ || !b->chain_ok) {
      return true;
    }
    if (cycles_ >= cycle_bound || memory_->fault_pending()) {
      return true;
    }
    // The next instruction's boundary (timer, fault hooks), exactly as a
    // fresh dispatch would run it before probing.
    if (!InstructionBoundary()) {
      return false;
    }
    const uint64_t now = block_cache_.version();
    BlockCache::Block* next = nullptr;
    if (b->link_slot != BlockCache::kNoLink && b->link_version == now) {
      // The stamp proves the linked slot held a block valid under the
      // current version when the link was patched, and that no
      // invalidation has landed since — so base/paging/bound revalidation
      // (BlockCurrent) is already implied. The key compare handles
      // everything the version does not pin: slot repurposing for a
      // different start, a conditional transfer going the other way this
      // time, and ring or checks regime changes.
      BlockCache::Block* cand = block_cache_.BlockAt(b->link_slot);
      if (cand->gen == block_cache_.generation() && cand->segno == regs_.ipr.segno &&
          cand->start == regs_.ipr.wordno && cand->ring == regs_.ipr.ring &&
          cand->checks == checks_enabled_) {
        next = cand;
        ++counters_.chain_follows;
        if (chain_ablation_) {
          ++cycles_;  // deliberately broken (fuzz-oracle test hook); see cpu.h
        }
      }
    }
    if (next == nullptr) {
      next = ProbeOrBuildBlock();
      if (next == nullptr) {
        // The boundary was consumed; fall back exactly as a dispatch miss
        // does, so block formation is identical with chaining on or off.
        return StepBody();
      }
      // Patch (or repatch — a conditional site flips between targets) the
      // successor link, stamped with the version the target was just
      // validated under.
      b->link_slot = block_cache_.SlotIndexOf(next);
      b->link_version = now;
      ++counters_.chain_links;
    }
    b = next;
  }
}

// Block formation: chain consecutive cached decodes, stopping at the
// segment bound, the gate-region boundary, the first missing or
// unverifiable decode, an op the current ring may not execute (it must
// trap on the per-instruction path), and — inclusively — any control
// transfer or trap-raising/privileged terminator.
BlockCache::Block* Cpu::TryBuildBlock(const VerdictCache::Entry& v) {
  const Segno segno = regs_.ipr.segno;
  const Wordno start = regs_.ipr.wordno;
  // The verdict's invariant guarantees the SDW is resident; its gate
  // count marks the boundary a straight-line run may not cross.
  const auto sdw = sdw_cache_.Peek(segno);
  const uint32_t gate = sdw.has_value() ? sdw->access.gate_count : 0;

  BlockCache::Block* b = block_cache_.SlotFor(segno, start);
  b->gen = 0;  // unpublish whatever the slot held while we fill it
  // The slot's old occupant may have carried a successor link; the new
  // block has not resolved one yet.
  b->link_slot = BlockCache::kNoLink;
  b->link_version = 0;
  uint16_t count = 0;
  while (count < BlockCache::kMaxOps) {
    const Wordno w = start + count;
    if (w >= v.bound) {
      break;
    }
    if (count != 0 && start < gate && w >= gate) {
      break;  // falling out of the gate region ends the block
    }
    const InsnCache::Entry* e = insn_cache_.Lookup(segno, w);
    if (e == nullptr) {
      break;
    }
    AbsAddr expected = 0;
    if (!v.paged) {
      expected = v.base + w;
    } else {
      const Tlb::Entry* t = tlb_.Lookup(segno, w >> kPageShift, v.base);
      if (t == nullptr) {
        break;
      }
      expected = t->frame + (w & kPageMask);
    }
    if (e->addr != expected) {
      break;
    }
    const OpcodeInfo& info = GetOpcodeInfo(e->ins.opcode);
    if (regs_.ipr.ring > info.max_ring) {
      break;  // privileged violation; the slow path raises it
    }
    BlockCache::Op& op = b->ops[count];
    op.ins = e->ins;
    op.wordno = w;
    op.addr = expected;
    op.needs_ea =
        info.operand != OperandKind::kNone && info.operand != OperandKind::kImmediate;
    ++count;
    if (EndsBlock(e->ins.opcode)) {
      break;
    }
  }
  if (count == 0) {
    return nullptr;
  }
  b->segno = segno;
  b->start = start;
  b->count = count;
  b->ring = regs_.ipr.ring;
  b->checks = checks_enabled_;
  b->paged = v.paged;
  b->base = v.base;
  b->op_charge = cycle_model_.instruction_base + cycle_model_.memory_ref +
                 (checks_enabled_ ? cycle_model_.access_check : 0) +
                 (v.paged ? cycle_model_.memory_ref : 0);
  b->chain_ok = ChainEligible(b->ops[count - 1].ins.opcode);
  b->gen = block_cache_.generation();
  ++counters_.block_builds;
  return b;
}

bool Cpu::EndsBlock(Opcode op) {
  switch (op) {
    case Opcode::kTra:
    case Opcode::kTze:
    case Opcode::kTnz:
    case Opcode::kTmi:
    case Opcode::kTpl:
    case Opcode::kCall:
    case Opcode::kRet:
    case Opcode::kMme:
    case Opcode::kSvc:
    case Opcode::kLdbr:
    case Opcode::kRett:
    case Opcode::kSio:
    case Opcode::kHlt:
      return true;
    default:
      return false;
  }
}

// The dispatch preamble shared by StepBlock's entry and its chain point:
// verdict probe, block-cache probe with revalidation, rebuild on miss.
BlockCache::Block* Cpu::ProbeOrBuildBlock() {
  const Ring ring = EffectiveRing(regs_.ipr.ring);
  const VerdictCache::Entry* v = FastVerdict(regs_.ipr.segno, ring);
  if (v == nullptr || (checks_enabled_ && !v->execute_ok)) {
    return nullptr;
  }
  BlockCache::Block* b = block_cache_.LookupMutable(regs_.ipr.segno, regs_.ipr.wordno);
  if (b != nullptr && BlockCurrent(*b, *v)) {
    ++counters_.block_hits;
    return b;
  }
  // Miss or stale under the current verdict/mode: rebuild in place from
  // whatever decodes the insn cache holds right now.
  return TryBuildBlock(*v);
}

// Whether a block ending in `op` may chain straight into its successor.
// Trap-raising terminators (MME, SVC, RETT, HLT, failed transfers) never
// reach the chain point — a pending trap ends the dispatch first.
bool Cpu::ChainEligible(Opcode op) {
  switch (op) {
    case Opcode::kSio:
      // SIO may queue I/O with a due cycle inside the bound the run loop
      // computed before this dispatch; chaining past it would run on a
      // stale bound and deliver the completion late.
      return false;
    case Opcode::kLdbr:
      // The DBR reload flushed every cache; any link stamp is already
      // dead, and the successor must be rebuilt under the new descriptor
      // regime anyway.
      return false;
    default:
      return true;
  }
}

// Figure 4: "Retrieval of next instruction to be executed." At the point
// the SDW for the segment containing the instruction is available, the
// ring of execution is matched against the execute bracket and the
// execute flag is checked.
bool Cpu::FetchInstruction(Instruction* ins) {
  const Ring ring = EffectiveRing(regs_.ipr.ring);

  // Fast path: a current verdict proves the SDW cache holds this segment
  // unchanged and that execution is permitted; a cached decode whose fill
  // address matches the address the slow path would compute proves the
  // word is the same one the slow path would fetch. For unpaged segments
  // that address is verdict base + wordno; for paged segments the TLB
  // supplies the frame (keyed on the verdict's base as the table base),
  // and the architectural walk is charged exactly as the slow path
  // charges it. Charge what the slow path charges on an SDW-cache hit
  // and skip the re-fetch and re-decode.
  if (const VerdictCache::Entry* v = FastVerdict(regs_.ipr.segno, ring);
      v != nullptr && (!checks_enabled_ || v->execute_ok) && regs_.ipr.wordno < v->bound) {
    AbsAddr expected = 0;
    bool have_addr = false;
    bool paged_hit = false;
    if (!v->paged) {
      expected = v->base + regs_.ipr.wordno;
      have_addr = true;
    } else if (TlbEnabled()) {
      if (const Tlb::Entry* t =
              tlb_.Lookup(regs_.ipr.segno, regs_.ipr.wordno >> kPageShift, v->base)) {
        expected = t->frame + (regs_.ipr.wordno & kPageMask);
        have_addr = true;
        paged_hit = true;
      }
    }
    const InsnCache::Entry* cached =
        have_addr ? insn_cache_.Lookup(regs_.ipr.segno, regs_.ipr.wordno) : nullptr;
    if (cached != nullptr && cached->addr == expected) {
      ++counters_.verdict_hits;
      ++counters_.insn_cache_hits;
      ++counters_.sdw_cache_hits;
      sdw_cache_.CountHit();
      if (checks_enabled_) {
        ++counters_.checks_fetch;
        cycles_ += cycle_model_.access_check;
      }
      if (paged_hit) {
        // The page-table walk the slow path would have performed.
        ++counters_.page_walks;
        cycles_ += cycle_model_.memory_ref;
        ++counters_.tlb_hits;
      }
      ++counters_.memory_reads;
      cycles_ += cycle_model_.memory_ref;
      *ins = cached->ins;
      return true;
    }
  }

  Sdw sdw;
  if (!FetchSdw(regs_.ipr.segno, &sdw)) {
    return false;
  }
  FillVerdict(regs_.ipr.segno, ring, sdw);
  if (checks_enabled_) {
    ++counters_.checks_fetch;
    cycles_ += cycle_model_.access_check;
    if (const auto decision = CheckExecute(sdw.access, ring); !decision.ok()) {
      RaiseTrap(decision.cause);
      return false;
    }
  }
  if (!CheckBounds(sdw, regs_.ipr.wordno)) {
    return false;
  }
  AbsAddr addr = 0;
  if (!ResolveOrFault(sdw, regs_.ipr.segno, regs_.ipr.wordno, &addr)) {
    return false;
  }
  ++counters_.memory_reads;
  cycles_ += cycle_model_.memory_ref;
  const Word word = memory_->Read(addr);
  // Fleet-shared decode: if this segment is backed by a published image
  // and the live word still matches the image's raw word, reuse the
  // pre-decoded instruction instead of decoding again. A mismatch is the
  // copy-on-write split — this machine wrote (or had patched) the word,
  // so it decodes its own copy while fleet siblings keep the shared one.
  const SharedDecodeImage::Entry* pre = DecodeImageEntry(regs_.ipr.segno, regs_.ipr.wordno);
  if (pre != nullptr && pre->raw != word) {
    ++counters_.shared_decode_misses;
    pre = nullptr;
  }
  if (pre != nullptr) {
    ++counters_.shared_decode_hits;
    if (!pre->decodable) {
      RaiseTrap(TrapCause::kIllegalOpcode);
      return false;
    }
    *ins = pre->ins;
  } else if (!DecodeInstruction(word, ins)) {
    RaiseTrap(TrapCause::kIllegalOpcode);
    return false;
  }
  if (fast_path_enabled_ && sdw_cache_.enabled()) {
    // Paged decodes are cacheable too: the fill address is an absolute
    // frame address, and a later fast-path hit revalidates it against the
    // TLB's current translation for the page.
    ++counters_.insn_cache_misses;
    insn_cache_.Put(regs_.ipr.segno, regs_.ipr.wordno, addr, *ins);
  }
  return true;
}

// Figure 5: "Formation in TPR of effective address of instruction
// operand." TPR.RING accumulates, via max, every ring that could have
// influenced the address: the current ring of execution, the ring in a
// base pointer register, the ring in each indirect word, and the top of
// the write bracket (SDW.R1) of each segment an indirect word was fetched
// from.
bool Cpu::FormEffectiveAddress(const Instruction& ins) {
  tpr_.ring = regs_.ipr.ring;

  int64_t wordno;
  if (ins.pr_relative) {
    const PointerRegister& pr = regs_.pr[ins.prnum];
    tpr_.segno = pr.segno;
    wordno = static_cast<int64_t>(pr.wordno) + ins.offset;
    if (mode_ == ProtectionMode::kRingHardware) {
      tpr_.ring = MaxRing(tpr_.ring, pr.ring);
    }
  } else {
    tpr_.segno = regs_.ipr.segno;
    wordno = ins.offset;
  }
  if (ins.tag != 0) {
    wordno += static_cast<int64_t>(regs_.x[ins.tag]);
  }
  if (wordno < 0 || wordno > kMaxWordno) {
    RaiseTrap(TrapCause::kBoundsViolation);
    return false;
  }
  tpr_.wordno = static_cast<Wordno>(wordno);

  if (!ins.indirect) {
    return true;
  }
  return ChaseIndirectWords();
}

bool Cpu::ChaseIndirectWords() {
  bool indirect = true;
  unsigned depth = 0;
  while (indirect) {
    if (++depth > kMaxIndirectionDepth) {
      RaiseTrap(TrapCause::kIndirectionLimit);
      return false;
    }
    // "The capability to read an indirect word during effective address
    // formation must be validated before the indirect word is retrieved.
    // Validation is with respect to the value in TPR.RING at the time the
    // indirect word is encountered."
    const Ring ring = EffectiveRing(tpr_.ring);
    AbsAddr addr = 0;
    Ring sdw_r1 = 0;
    const VerdictCache::Entry* v = FastVerdict(tpr_.segno, ring);
    if (v != nullptr && (!checks_enabled_ || v->indirect_ok)) {
      // Fast path: skip the SDW fetch and the bracket comparison; the
      // indirect word itself is still read from the core store below.
      ++counters_.verdict_hits;
      ++counters_.sdw_cache_hits;
      sdw_cache_.CountHit();
      if (checks_enabled_) {
        ++counters_.checks_indirect;
        cycles_ += cycle_model_.access_check;
      }
      if (tpr_.wordno >= v->bound) {
        RaiseTrap(TrapCause::kBoundsViolation);
        return false;
      }
      if (!FastResolve(*v, tpr_.segno, tpr_.wordno, &addr)) {
        return false;
      }
      sdw_r1 = v->r1;
    } else {
      Sdw sdw;
      if (!FetchSdw(tpr_.segno, &sdw)) {
        return false;
      }
      FillVerdict(tpr_.segno, ring, sdw);
      if (checks_enabled_) {
        ++counters_.checks_indirect;
        cycles_ += cycle_model_.access_check;
        if (const auto decision = CheckIndirectRead(sdw.access, ring); !decision.ok()) {
          RaiseTrap(decision.cause);
          return false;
        }
      }
      if (!CheckBounds(sdw, tpr_.wordno)) {
        return false;
      }
      if (!ResolveOrFault(sdw, tpr_.segno, tpr_.wordno, &addr)) {
        return false;
      }
      sdw_r1 = sdw.access.brackets.r1;
    }
    ++counters_.memory_reads;
    ++counters_.indirect_words;
    cycles_ += cycle_model_.memory_ref;
    IndirectWord iw = DecodeIndirectWord(memory_->Read(addr));
    if (fault_injector_ != nullptr && !iw.fault) {
      fault_injector_->MaybeCorruptIndirectRing(cycles_, tpr_.segno, tpr_.wordno, &iw);
    }
    if (iw.fault) {
      // An unsnapped dynamic link: trap so the supervisor can resolve the
      // symbolic reference, overwrite this word with a snapped pointer,
      // and resume the disrupted instruction. The fault address locates
      // the link word itself.
      pending_fault_addr_ = SegAddr{tpr_.segno, tpr_.wordno};
      RaiseTrap(TrapCause::kLinkFault);
      return false;
    }
    if (mode_ == ProtectionMode::kRingHardware) {
      // "TPR.RING is updated with the larger of its current value, the
      // ring number in the indirect word (IND.RING), and the top of the
      // write bracket for the segment containing the indirect word
      // (SDW.R1)."
      tpr_.ring = MaxRing(tpr_.ring, iw.ring, sdw_r1);
    }
    tpr_.segno = iw.segno;
    tpr_.wordno = iw.wordno;
    indirect = iw.indirect;
  }
  return true;
}

// Figure 6: instructions which read or write their operands.
bool Cpu::ReadOperand(Word* out) {
  const Ring ring = EffectiveRing(tpr_.ring);
  if (const VerdictCache::Entry* v = FastVerdict(tpr_.segno, ring);
      v != nullptr && (!checks_enabled_ || v->read_ok)) {
    ++counters_.verdict_hits;
    ++counters_.sdw_cache_hits;
    sdw_cache_.CountHit();
    if (checks_enabled_) {
      ++counters_.checks_read;
      cycles_ += cycle_model_.access_check;
    }
    if (tpr_.wordno >= v->bound) {
      RaiseTrap(TrapCause::kBoundsViolation);
      return false;
    }
    AbsAddr addr = 0;
    if (!FastResolve(*v, tpr_.segno, tpr_.wordno, &addr)) {
      return false;
    }
    ++counters_.memory_reads;
    cycles_ += cycle_model_.memory_ref;
    *out = memory_->Read(addr);
    return true;
  }

  Sdw sdw;
  if (!FetchSdw(tpr_.segno, &sdw)) {
    return false;
  }
  FillVerdict(tpr_.segno, ring, sdw);
  if (checks_enabled_) {
    ++counters_.checks_read;
    cycles_ += cycle_model_.access_check;
    if (const auto decision = CheckRead(sdw.access, ring); !decision.ok()) {
      RaiseTrap(decision.cause);
      return false;
    }
  }
  if (!CheckBounds(sdw, tpr_.wordno)) {
    return false;
  }
  AbsAddr addr = 0;
  if (!ResolveOrFault(sdw, tpr_.segno, tpr_.wordno, &addr)) {
    return false;
  }
  ++counters_.memory_reads;
  cycles_ += cycle_model_.memory_ref;
  *out = memory_->Read(addr);
  return true;
}

bool Cpu::WriteOperand(Word value) {
  const Ring ring = EffectiveRing(tpr_.ring);
  if (const VerdictCache::Entry* v = FastVerdict(tpr_.segno, ring);
      v != nullptr && (!checks_enabled_ || v->write_ok)) {
    ++counters_.verdict_hits;
    ++counters_.sdw_cache_hits;
    sdw_cache_.CountHit();
    if (checks_enabled_) {
      ++counters_.checks_write;
      cycles_ += cycle_model_.access_check;
    }
    if (tpr_.wordno >= v->bound) {
      RaiseTrap(TrapCause::kBoundsViolation);
      return false;
    }
    AbsAddr addr = 0;
    if (!FastResolve(*v, tpr_.segno, tpr_.wordno, &addr)) {
      return false;
    }
    ++counters_.memory_writes;
    cycles_ += cycle_model_.memory_ref;
    memory_->Write(addr, value);
    NoteStore(addr, v->flags_execute, tpr_.segno);
    return true;
  }

  Sdw sdw;
  if (!FetchSdw(tpr_.segno, &sdw)) {
    return false;
  }
  FillVerdict(tpr_.segno, ring, sdw);
  if (checks_enabled_) {
    ++counters_.checks_write;
    cycles_ += cycle_model_.access_check;
    if (const auto decision = CheckWrite(sdw.access, ring); !decision.ok()) {
      RaiseTrap(decision.cause);
      return false;
    }
  }
  if (!CheckBounds(sdw, tpr_.wordno)) {
    return false;
  }
  AbsAddr addr = 0;
  if (!ResolveOrFault(sdw, tpr_.segno, tpr_.wordno, &addr)) {
    return false;
  }
  ++counters_.memory_writes;
  cycles_ += cycle_model_.memory_ref;
  memory_->Write(addr, value);
  NoteStore(addr, sdw.access.flags.execute, tpr_.segno);
  return true;
}

bool Cpu::FastResolve(const VerdictCache::Entry& v, Segno segno, Wordno wordno, AbsAddr* out) {
  if (!v.paged) {
    *out = v.base + wordno;
    return true;
  }
  // Paged: the page-table walk is architectural, so it is performed (and
  // charged) exactly as in ResolveAddress — only the SDW fetch and the
  // bracket comparison were skipped. The walk itself may be answered by
  // the TLB; the verdict's base is the table base the walk is keyed on.
  const TrapCause cause = WalkPageTable(v.base, segno, wordno, out);
  if (cause != TrapCause::kNone) {
    RaiseTrap(cause);
    return false;
  }
  return true;
}

void Cpu::NoteStore(AbsAddr addr, bool target_executable, Segno segno) {
  if (target_executable) {
    // Self-modifying (or link-snapped) code: drop any cached decodes for
    // the segment so the next fetch re-reads the stored word. Blocks
    // chained from those decodes retire with them — including the block
    // this store may be executing from (the version bump bails it).
    insn_cache_.InvalidateSegment(segno);
    counters_.block_invalidations += block_cache_.InvalidateSegment(segno);
    ++counters_.insn_cache_invalidations;
  }
  // The store may have landed on a page-table word some TLB entry
  // memoized; the snoop drops exactly those translations.
  if (const size_t dropped = tlb_.NoteStore(addr); dropped != 0) {
    counters_.tlb_invalidations += dropped;
  }
  // A store that lands inside the descriptor segment edits an SDW behind
  // the processor's associative registers; treat it exactly like a
  // supervisor InvalidateSdw for the segment whose descriptor pair the
  // word belongs to.
  const AbsAddr dseg_base = regs_.dbr.base;
  if (addr >= dseg_base &&
      addr < dseg_base + static_cast<AbsAddr>(regs_.dbr.bound) * kSdwPairWords) {
    InvalidateSdw(static_cast<Segno>((addr - dseg_base) / kSdwPairWords));
  }
}

// Figure 7: transfer instructions other than CALL and RETURN. The advance
// check catches the violation "while it is still possible to identify the
// instruction which made the illegal transfer"; a raised effective ring is
// rejected because these transfers cannot change the ring of execution.
void Cpu::ExecuteTransfer() {
  const Ring exec_ring = EffectiveRing(regs_.ipr.ring);
  const Ring effective =
      EffectiveRing(mode_ == ProtectionMode::kRingHardware ? tpr_.ring : regs_.ipr.ring);
  if (const VerdictCache::Entry* v = FastVerdict(tpr_.segno, exec_ring);
      v != nullptr && (!checks_enabled_ || (effective == exec_ring && v->execute_ok))) {
    ++counters_.verdict_hits;
    ++counters_.sdw_cache_hits;
    sdw_cache_.CountHit();
    if (checks_enabled_) {
      ++counters_.checks_transfer;
      cycles_ += cycle_model_.access_check;
    }
    if (tpr_.wordno >= v->bound) {
      RaiseTrap(TrapCause::kBoundsViolation);
      return;
    }
    regs_.ipr.segno = tpr_.segno;
    regs_.ipr.wordno = tpr_.wordno;
    return;
  }

  Sdw sdw;
  if (!FetchSdw(tpr_.segno, &sdw)) {
    return;
  }
  FillVerdict(tpr_.segno, exec_ring, sdw);
  if (checks_enabled_) {
    ++counters_.checks_transfer;
    cycles_ += cycle_model_.access_check;
    if (const auto decision = CheckTransfer(sdw.access, exec_ring, effective); !decision.ok()) {
      RaiseTrap(decision.cause);
      return;
    }
  }
  if (!CheckBounds(sdw, tpr_.wordno)) {
    return;
  }
  regs_.ipr.segno = tpr_.segno;
  regs_.ipr.wordno = tpr_.wordno;
}

// Figure 8: the CALL instruction. The crossing cache memoizes the
// resolution per call site (see crossing_cache.h): on a hit the SDW
// fetch, gate check, and bracket comparison are all replayed from the
// memo with the exact charges the slow path takes on an SDW-cache hit.
void Cpu::ExecuteCall() {
  if (mode_ == ProtectionMode::kFlags645) {
    // The 645-style base has no call hardware; rings are crossed by MME
    // traps handled in software (src/b645).
    RaiseTrap(TrapCause::kIllegalOpcode);
    return;
  }
  const Ring old_ring = regs_.ipr.ring;
  const bool memo_enabled = CrossingCacheEnabled();
  Ring new_ring = old_ring;
  bool ring_changed = false;
  bool memo_hit = false;
  if (memo_enabled) {
    const CrossingCache::Entry& e =
        crossing_cache_.SlotFor(ipr_at_fetch_.segno, ipr_at_fetch_.wordno);
    if (crossing_cache_.Valid(e, /*is_call=*/true, ipr_at_fetch_.segno, ipr_at_fetch_.wordno,
                              tpr_.segno, tpr_.wordno, tpr_.ring, old_ring,
                              sdw_cache_.flush_epoch())) {
      ++counters_.sdw_cache_hits;
      sdw_cache_.CountHit();
      ++counters_.checks_call;
      cycles_ += cycle_model_.access_check;
      ++counters_.crossing_hits;
      new_ring = e.new_ring;
      ring_changed = e.ring_changed;
      memo_hit = true;
    }
  }
  if (!memo_hit) {
    Sdw sdw;
    if (!FetchSdw(tpr_.segno, &sdw)) {
      return;
    }
    ++counters_.checks_call;
    cycles_ += cycle_model_.access_check;

    const bool same_segment = tpr_.segno == ipr_at_fetch_.segno;
    TransferOutcome outcome = TransferOutcome::Enter(old_ring, false);
    if (checks_enabled_) {
      outcome = ResolveCall(sdw.access, old_ring, tpr_.ring, tpr_.wordno, same_segment);
      if (!outcome.ok()) {
        RaiseTrap(outcome.cause);
        return;
      }
    }
    if (!CheckBounds(sdw, tpr_.wordno)) {
      return;
    }
    new_ring = outcome.new_ring;
    ring_changed = outcome.ring_changed;
    if (memo_enabled) {
      ++counters_.crossing_misses;
      crossing_cache_.Fill(crossing_cache_.SlotFor(ipr_at_fetch_.segno, ipr_at_fetch_.wordno),
                           /*is_call=*/true, ipr_at_fetch_.segno, ipr_at_fetch_.wordno,
                           tpr_.segno, tpr_.wordno, tpr_.ring, old_ring,
                           sdw_cache_.flush_epoch(), new_ring, ring_changed);
    }
  }

  if (ring_changed) {
    ++counters_.calls_downward;
  } else {
    ++counters_.calls_same_ring;
  }

  // Stack rule (Figure 8 footnote): same-ring calls keep the current stack
  // segment (from the stack pointer register); ring-changing calls use the
  // standard stack segment DBR.stack_base + new ring.
  const uint64_t stack_segno = SelectStackSegment(
      ring_changed, regs_.pr[kPrStack].segno, regs_.dbr.stack_base, new_ring);
  regs_.pr[kPrStackBase] =
      PointerRegister{new_ring, static_cast<Segno>(stack_segno), 0};

  // Return pointer (see DESIGN.md): the old ring/segno/wordno+1. Its ring
  // field is >= the new ring, preserving the PR-ring invariant.
  regs_.pr[kPrReturn] = PointerRegister{old_ring, ipr_at_fetch_.segno,
                                        ipr_at_fetch_.wordno + 1};

  if (ring_changed && trace_ != nullptr && trace_->enabled()) {
    trace_->Record(TraceEvent{EventKind::kRingSwitch, cycles_, old_ring,
                              SegAddr{tpr_.segno, tpr_.wordno}, TrapCause::kNone, new_ring, {}});
  }

  regs_.ipr = Ipr{new_ring, tpr_.segno, tpr_.wordno};
}

// Figure 9: the RETURN instruction. "The ring to which the return is made
// is specified by the effective ring portion of the effective address....
// In the case that the return is upward, the ring number fields in all
// pointer registers are replaced with the larger of their current values
// and the new ring of execution."
void Cpu::ExecuteReturn() {
  if (mode_ == ProtectionMode::kFlags645) {
    RaiseTrap(TrapCause::kIllegalOpcode);
    return;
  }
  const Ring old_ring = regs_.ipr.ring;
  const bool memo_enabled = CrossingCacheEnabled();
  Ring new_ring = old_ring;
  bool memo_hit = false;
  if (memo_enabled) {
    const CrossingCache::Entry& e =
        crossing_cache_.SlotFor(ipr_at_fetch_.segno, ipr_at_fetch_.wordno);
    if (crossing_cache_.Valid(e, /*is_call=*/false, ipr_at_fetch_.segno, ipr_at_fetch_.wordno,
                              tpr_.segno, tpr_.wordno, tpr_.ring, old_ring,
                              sdw_cache_.flush_epoch())) {
      ++counters_.sdw_cache_hits;
      sdw_cache_.CountHit();
      ++counters_.checks_return;
      cycles_ += cycle_model_.access_check;
      ++counters_.crossing_hits;
      new_ring = e.new_ring;
      memo_hit = true;
    }
  }
  if (!memo_hit) {
    Sdw sdw;
    if (!FetchSdw(tpr_.segno, &sdw)) {
      return;
    }
    ++counters_.checks_return;
    cycles_ += cycle_model_.access_check;

    TransferOutcome outcome = TransferOutcome::Enter(old_ring, false);
    if (checks_enabled_) {
      outcome = ResolveReturn(sdw.access, old_ring, tpr_.ring);
      if (!outcome.ok()) {
        RaiseTrap(outcome.cause);
        return;
      }
    }
    if (!CheckBounds(sdw, tpr_.wordno)) {
      return;
    }
    new_ring = outcome.new_ring;
    if (memo_enabled) {
      ++counters_.crossing_misses;
      crossing_cache_.Fill(crossing_cache_.SlotFor(ipr_at_fetch_.segno, ipr_at_fetch_.wordno),
                           /*is_call=*/false, ipr_at_fetch_.segno, ipr_at_fetch_.wordno,
                           tpr_.segno, tpr_.wordno, tpr_.ring, old_ring,
                           sdw_cache_.flush_epoch(), new_ring, new_ring > old_ring);
    }
  }
  if (new_ring > old_ring) {
    ++counters_.returns_upward;
    for (PointerRegister& pr : regs_.pr) {
      pr.ring = MaxRing(pr.ring, new_ring);
    }
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Record(TraceEvent{EventKind::kRingSwitch, cycles_, old_ring,
                                SegAddr{tpr_.segno, tpr_.wordno}, TrapCause::kNone, new_ring, {}});
    }
  } else {
    ++counters_.returns_same_ring;
  }

  regs_.ipr = Ipr{new_ring, tpr_.segno, tpr_.wordno};
}

// Per-opcode execute handlers, dispatched through the Execute switch by
// both the per-instruction path and the superblock inner loop.

void Cpu::OpNop(const Instruction& ins) { (void)ins; }

void Cpu::OpLda(const Instruction& ins) {
  (void)ins;
  Word value = 0;
  if (ReadOperand(&value)) {
    regs_.a = value;
  }
}

void Cpu::OpLdq(const Instruction& ins) {
  (void)ins;
  Word value = 0;
  if (ReadOperand(&value)) {
    regs_.q = value;
  }
}

void Cpu::OpLdx(const Instruction& ins) {
  Word value = 0;
  if (ReadOperand(&value)) {
    regs_.x[ins.reg] = static_cast<uint32_t>(value) & kIndexMask;
  }
}

void Cpu::OpSta(const Instruction& ins) {
  (void)ins;
  WriteOperand(regs_.a);
}

void Cpu::OpStq(const Instruction& ins) {
  (void)ins;
  WriteOperand(regs_.q);
}

void Cpu::OpStx(const Instruction& ins) { WriteOperand(regs_.x[ins.reg]); }

void Cpu::OpStz(const Instruction& ins) {
  (void)ins;
  WriteOperand(0);
}

void Cpu::OpLdai(const Instruction& ins) {
  regs_.a = static_cast<Word>(static_cast<int64_t>(ins.offset));
}

void Cpu::OpLdqi(const Instruction& ins) {
  regs_.q = static_cast<Word>(static_cast<int64_t>(ins.offset));
}

void Cpu::OpLdxi(const Instruction& ins) {
  regs_.x[ins.reg] = static_cast<uint32_t>(ins.offset) & kIndexMask;
}

void Cpu::OpAdai(const Instruction& ins) {
  regs_.a += static_cast<Word>(static_cast<int64_t>(ins.offset));
}

void Cpu::OpAda(const Instruction& ins) {
  (void)ins;
  Word value = 0;
  if (ReadOperand(&value)) {
    regs_.a += value;
  }
}

void Cpu::OpSba(const Instruction& ins) {
  (void)ins;
  Word value = 0;
  if (ReadOperand(&value)) {
    regs_.a -= value;
  }
}

void Cpu::OpMpy(const Instruction& ins) {
  (void)ins;
  Word value = 0;
  if (ReadOperand(&value)) {
    regs_.a *= value;
  }
}

void Cpu::OpAna(const Instruction& ins) {
  (void)ins;
  Word value = 0;
  if (ReadOperand(&value)) {
    regs_.a &= value;
  }
}

void Cpu::OpOra(const Instruction& ins) {
  (void)ins;
  Word value = 0;
  if (ReadOperand(&value)) {
    regs_.a |= value;
  }
}

void Cpu::OpEra(const Instruction& ins) {
  (void)ins;
  Word value = 0;
  if (ReadOperand(&value)) {
    regs_.a ^= value;
  }
}

void Cpu::OpAls(const Instruction& ins) {
  regs_.a = ins.offset >= 64 ? 0 : regs_.a << (ins.offset & 63);
}

void Cpu::OpArs(const Instruction& ins) {
  regs_.a = ins.offset >= 64 ? 0 : regs_.a >> (ins.offset & 63);
}

void Cpu::OpNega(const Instruction& ins) {
  (void)ins;
  regs_.a = ~regs_.a + 1;
}

void Cpu::OpXaq(const Instruction& ins) {
  (void)ins;
  std::swap(regs_.a, regs_.q);
}

void Cpu::OpAos(const Instruction& ins) {
  (void)ins;
  Word value = 0;
  if (ReadOperand(&value)) {
    WriteOperand(value + 1);
  }
}

void Cpu::OpEpp(const Instruction& ins) {
  // EAP-type (Figure 7): "instructions which load the RING, SEGNO and
  // WORDNO fields of PRn with the corresponding fields of TPR. The
  // operand is not referenced, so no access validation is required."
  regs_.pr[ins.reg] = PointerRegister{tpr_.ring, tpr_.segno, tpr_.wordno};
}

void Cpu::OpSpp(const Instruction& ins) {
  // Store PRn as an indirect word. The stored RING field is the PR's
  // ring, so an argument address saved to memory keeps its validation
  // level ("If PR1 is then stored as an indirect word, this effective
  // ring is put into the RING field of the indirect word").
  const PointerRegister& pr = regs_.pr[ins.reg];
  WriteOperand(EncodeIndirectWord(IndirectWord{pr.ring, false, pr.segno, pr.wordno}));
}

void Cpu::OpTra(const Instruction& ins) {
  (void)ins;
  ExecuteTransfer();
}

void Cpu::OpTze(const Instruction& ins) {
  (void)ins;
  if (regs_.a == 0) {
    ExecuteTransfer();
  }
}

void Cpu::OpTnz(const Instruction& ins) {
  (void)ins;
  if (regs_.a != 0) {
    ExecuteTransfer();
  }
}

void Cpu::OpTmi(const Instruction& ins) {
  (void)ins;
  if (static_cast<int64_t>(regs_.a) < 0) {
    ExecuteTransfer();
  }
}

void Cpu::OpTpl(const Instruction& ins) {
  (void)ins;
  if (static_cast<int64_t>(regs_.a) >= 0) {
    ExecuteTransfer();
  }
}

void Cpu::OpCall(const Instruction& ins) {
  (void)ins;
  ExecuteCall();
}

void Cpu::OpRet(const Instruction& ins) {
  (void)ins;
  ExecuteReturn();
}

void Cpu::OpMme(const Instruction& ins) {
  RaiseServiceTrap(TrapCause::kMasterModeEntry, ins.offset);
}

void Cpu::OpSvc(const Instruction& ins) {
  RaiseServiceTrap(TrapCause::kSupervisorService, ins.offset);
}

void Cpu::OpLdbr(const Instruction& ins) {
  (void)ins;
  // Privileged: load the DBR from the operand pair (base word and
  // bound/stack word) and flush the descriptor cache.
  Word w0 = 0;
  Word w1 = 0;
  if (!ReadOperand(&w0)) {
    return;
  }
  ++tpr_.wordno;
  if (!ReadOperand(&w1)) {
    return;
  }
  DbrValue dbr;
  dbr.base = ExtractBits(w0, 0, 40);
  dbr.bound = static_cast<Segno>(ExtractBits(w1, 0, kSegnoBits));
  dbr.stack_base = static_cast<Segno>(ExtractBits(w1, kSegnoBits, kSegnoBits));
  SetDbr(dbr);
}

void Cpu::OpRett(const Instruction& ins) {
  (void)ins;
  // Guest-code RETT is not used in this reproduction (trap handling is
  // dispatched to the C++ supervisor, which resumes via Cpu::Rett);
  // executing it in guest ring-0 code is an error.
  RaiseTrap(TrapCause::kIllegalOpcode);
}

void Cpu::OpSio(const Instruction& ins) {
  Word value = 0;
  if (ReadOperand(&value)) {
    if (sio_handler_) {
      sio_handler_(ins.reg, value);
    }
  }
}

void Cpu::OpHlt(const Instruction& ins) {
  (void)ins;
  RaiseServiceTrap(TrapCause::kHalt, 0);
}

void Cpu::OpIllegal(const Instruction& ins) {
  (void)ins;
  RaiseTrap(TrapCause::kIllegalOpcode);
}

// Both the per-instruction path and the block inner loop dispatch through
// this switch: the handlers live in this translation unit, so the switch
// lets the compiler inline the hot ones, which an indirect member-pointer
// call could not.
void Cpu::Execute(const Instruction& ins) {
  switch (ins.opcode) {
    case Opcode::kNop: return OpNop(ins);
    case Opcode::kLda: return OpLda(ins);
    case Opcode::kLdq: return OpLdq(ins);
    case Opcode::kLdx: return OpLdx(ins);
    case Opcode::kSta: return OpSta(ins);
    case Opcode::kStq: return OpStq(ins);
    case Opcode::kStx: return OpStx(ins);
    case Opcode::kStz: return OpStz(ins);
    case Opcode::kLdai: return OpLdai(ins);
    case Opcode::kLdqi: return OpLdqi(ins);
    case Opcode::kLdxi: return OpLdxi(ins);
    case Opcode::kAdai: return OpAdai(ins);
    case Opcode::kAda: return OpAda(ins);
    case Opcode::kSba: return OpSba(ins);
    case Opcode::kMpy: return OpMpy(ins);
    case Opcode::kAna: return OpAna(ins);
    case Opcode::kOra: return OpOra(ins);
    case Opcode::kEra: return OpEra(ins);
    case Opcode::kAls: return OpAls(ins);
    case Opcode::kArs: return OpArs(ins);
    case Opcode::kNega: return OpNega(ins);
    case Opcode::kXaq: return OpXaq(ins);
    case Opcode::kAos: return OpAos(ins);
    case Opcode::kEpp: return OpEpp(ins);
    case Opcode::kSpp: return OpSpp(ins);
    case Opcode::kTra: return OpTra(ins);
    case Opcode::kTze: return OpTze(ins);
    case Opcode::kTnz: return OpTnz(ins);
    case Opcode::kTmi: return OpTmi(ins);
    case Opcode::kTpl: return OpTpl(ins);
    case Opcode::kCall: return OpCall(ins);
    case Opcode::kRet: return OpRet(ins);
    case Opcode::kMme: return OpMme(ins);
    case Opcode::kSvc: return OpSvc(ins);
    case Opcode::kLdbr: return OpLdbr(ins);
    case Opcode::kRett: return OpRett(ins);
    case Opcode::kSio: return OpSio(ins);
    case Opcode::kHlt: return OpHlt(ins);
    default: return OpIllegal(ins);
  }
}

}  // namespace rings

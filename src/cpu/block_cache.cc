#include "src/cpu/block_cache.h"

namespace rings {

size_t BlockCache::InvalidateSegment(Segno segno) {
  size_t dropped = 0;
  if (blocks_ == nullptr) {
    ++version_;
    return 0;
  }
  for (size_t i = 0; i < kEntries; ++i) {
    Block& b = blocks_[i];
    if (b.gen == gen_ && b.segno == segno) {
      b.gen = 0;
      ++dropped;
    }
  }
  ++version_;
  return dropped;
}

}  // namespace rings

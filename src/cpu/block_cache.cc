#include "src/cpu/block_cache.h"

namespace rings {

size_t BlockCache::InvalidateSegment(Segno segno) {
  size_t dropped = 0;
  for (Block& b : blocks_) {
    if (b.gen == gen_ && b.segno == segno) {
      b.gen = 0;
      ++dropped;
    }
  }
  ++version_;
  return dropped;
}

}  // namespace rings

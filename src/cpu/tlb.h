// Software TLB: the host-side memo of the page-table walk. The paper
// treats paging as "totally transparent to an executing machine language
// program", so the walk is pure per-reference overhead for the simulator
// to re-derive; this cache holds (segno, pageno) -> frame translations the
// way the verdict cache holds access verdicts.
//
// An entry is a fact about the core store: "the PTW at table_base + pageno
// decodes to a present page at `frame`". It is keyed by the page table's
// base address as well as by (segno, pageno), so a descriptor edit that
// moves a segment's page table can never revalidate a stale translation —
// the caller always probes with the base of the descriptor it currently
// trusts (a current verdict entry or a freshly fetched SDW). What remains
// is exactly one staleness vector, a store to the PTW word itself, and
// NoteStore snoops every store for that (a membership filter keeps the
// common non-PTW store to one bit test).
//
// Like the verdict cache, the TLB is purely derived state: the walk's
// cycle charge and page_walks counter are applied by the processor whether
// the translation comes from the TLB or from the core store, missing pages
// always take the slow path (absent PTWs are never cached), and the
// differential test pins bit-identical machine behavior with the fast path
// on or off. Flush() is an O(1) generation bump, wired to every event that
// retires the whole translation regime (DBR reloads, descriptor-cache
// flushes, raw pokes into the core store).
#ifndef SRC_CPU_TLB_H_
#define SRC_CPU_TLB_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/mem/word.h"

namespace rings {

class Tlb {
 public:
  // Set-associative: 64 sets x 4 ways. Victim choice within a set is
  // round-robin, so fills are deterministic for a given reference stream.
  static constexpr size_t kSets = 64;
  static constexpr size_t kWays = 4;
  static constexpr size_t kEntries = kSets * kWays;

  struct Entry {
    uint64_t gen = 0;  // valid iff equal to the cache's current generation
    Segno segno = 0;
    uint64_t pageno = 0;
    AbsAddr table_base = 0;  // SDW.base the walk started from
    AbsAddr frame = 0;       // the present page's first word
  };

  // Returns the entry translating page `pageno` of `segno` via the page
  // table at `table_base`, or nullptr. Pure probe: no statistics.
  const Entry* Lookup(Segno segno, uint64_t pageno, AbsAddr table_base) const {
    const size_t set = SetIndex(segno, pageno);
    for (size_t way = 0; way < kWays; ++way) {
      const Entry& e = entries_[set * kWays + way];
      if (e.gen == gen_ && e.segno == segno && e.pageno == pageno &&
          e.table_base == table_base) {
        return &e;
      }
    }
    return nullptr;
  }

  // Memoizes a successful walk. Only present pages are ever filled; a
  // missing page must re-walk (and re-trap) on every reference.
  void Fill(Segno segno, uint64_t pageno, AbsAddr table_base, AbsAddr frame);

  // A store landed at absolute address `addr`; drops any entry decoded
  // from that word (the PTW snoop). Returns the number of entries
  // dropped. One filter probe on the fast path; the scan runs only when
  // the filter admits the address.
  size_t NoteStore(AbsAddr addr);

  // Drops every translation for `segno` (its SDW was edited, evicted, or
  // corrupted — the page table may have moved). Returns entries dropped.
  size_t InvalidateSegment(Segno segno);

  // Drops one page's translation (supervisor page-table edit with the
  // segment number in hand). Returns entries dropped.
  size_t InvalidatePage(Segno segno, uint64_t pageno);

  // O(1) whole-TLB invalidation (generation bump).
  void Flush();

 private:
  static size_t SetIndex(Segno segno, uint64_t pageno) {
    return static_cast<size_t>((pageno ^ (uint64_t{segno} * 0x9E3779B1u)) % kSets);
  }

  // Membership filter over the PTW addresses of resident entries: a set
  // bit means "some entry may have been decoded from this address". No
  // false negatives; a false positive costs one scan of the entries.
  static constexpr size_t kFilterWords = 32;  // 2048 bits
  static size_t FilterBit(AbsAddr addr) {
    return static_cast<size_t>((addr * 0x9E3779B97F4A7C15ull) >> 53);  // top 11 bits
  }
  bool FilterTest(AbsAddr addr) const {
    const size_t bit = FilterBit(addr);
    return (filter_[bit / 64] >> (bit % 64)) & 1;
  }
  void FilterSet(AbsAddr addr) {
    const size_t bit = FilterBit(addr);
    filter_[bit / 64] |= uint64_t{1} << (bit % 64);
  }

  uint64_t gen_ = 1;  // entries zero-initialize to gen 0 == invalid
  std::array<Entry, kEntries> entries_{};
  std::array<uint8_t, kSets> victim_{};
  std::array<uint64_t, kFilterWords> filter_{};
};

}  // namespace rings

#endif  // SRC_CPU_TLB_H_

#include "src/cpu/registers.h"

#include "src/base/strings.h"

namespace rings {

std::string PointerRegister::ToString() const {
  return StrFormat("%u|%u|%u", ring, segno, wordno);
}

std::string RegisterFile::ToString() const {
  std::string out = StrFormat("ipr=%s a=%llu q=%llu", ipr.ToString().c_str(),
                              static_cast<unsigned long long>(a),
                              static_cast<unsigned long long>(q));
  for (unsigned i = 0; i < kNumPointerRegisters; ++i) {
    out += StrFormat(" pr%u=%s", i, pr[i].ToString().c_str());
  }
  return out;
}

}  // namespace rings

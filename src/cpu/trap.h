// Trap state. "When the processor detects such a condition, it changes the
// ring of execution to zero and transfers control to a fixed location in
// the supervisor. A special instruction allows the state of the processor
// at the time of the trap to be restored later if appropriate, resuming
// the disrupted instruction."
//
// In this reproduction the supervisor bodies are C++ (see DESIGN.md), so a
// trap freezes the simulated processor with the saved state below; the
// machine dispatches it to the supervisor, which may edit the state and
// resume via Cpu::Rett.
#ifndef SRC_CPU_TRAP_H_
#define SRC_CPU_TRAP_H_

#include <cstdint>

#include "src/core/trap_cause.h"
#include "src/cpu/registers.h"
#include "src/isa/instruction.h"

namespace rings {

struct TrapState {
  TrapCause cause = TrapCause::kNone;
  // Processor state to restore on RETT. For access violations and faults
  // the IPR addresses the disrupted instruction (so it can be resumed);
  // for service traps (MME/SVC/HLT) the IPR addresses the next
  // instruction.
  RegisterFile regs;
  // The effective address being formed when the trap occurred (TPR),
  // including the effective ring — the supervisor's upward-call emulation
  // reads the call target from here.
  Tpr tpr;
  // The instruction that trapped (undefined for asynchronous causes).
  Instruction instruction;
  // Service code: the offset field of MME / SVC, the device number for I/O
  // completion.
  int64_t code = 0;
  // For memory faults (missing page): the two-part address that faulted,
  // so the supervisor can repair and resume the disrupted instruction.
  SegAddr fault_addr{};
};

}  // namespace rings

#endif  // SRC_CPU_TRAP_H_

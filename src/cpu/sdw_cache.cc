#include "src/cpu/sdw_cache.h"

namespace rings {

std::optional<Sdw> SdwCache::Lookup(Segno segno) const {
  if (!enabled_) {
    ++misses_;
    return std::nullopt;
  }
  const Entry& e = entries_[segno % kEntries];
  if (e.valid && e.segno == segno) {
    ++hits_;
    return e.sdw;
  }
  ++misses_;
  return std::nullopt;
}

std::optional<Sdw> SdwCache::Peek(Segno segno) const {
  if (!enabled_) {
    return std::nullopt;
  }
  const Entry& e = entries_[segno % kEntries];
  if (e.valid && e.segno == segno) {
    return e.sdw;
  }
  return std::nullopt;
}

void SdwCache::Insert(Segno segno, const Sdw& sdw) {
  if (!enabled_) {
    return;
  }
  entries_[segno % kEntries] = Entry{true, segno, sdw};
}

void SdwCache::Invalidate(Segno segno) {
  Entry& e = entries_[segno % kEntries];
  if (e.valid && e.segno == segno) {
    e.valid = false;
  }
}

void SdwCache::InvalidateIndex(size_t index) {
  entries_[index % kEntries].valid = false;
}

void SdwCache::Flush() {
  ++flush_epoch_;
  for (Entry& e : entries_) {
    e.valid = false;
  }
}

}  // namespace rings

#include "src/cpu/sdw_cache.h"

namespace rings {

void SdwCache::Invalidate(Segno segno) {
  Entry& e = entries_[segno % kEntries];
  if (e.valid && e.segno == segno) {
    e.valid = false;
  }
}

void SdwCache::InvalidateIndex(size_t index) {
  entries_[index % kEntries].valid = false;
}

void SdwCache::Flush() {
  ++flush_epoch_;
  for (Entry& e : entries_) {
    e.valid = false;
  }
}

}  // namespace rings

// Monomorphic CALL/RETURN target cache: a per-site inline cache of the
// Figure 8/9 crossing resolution. Most call sites are monomorphic — the
// same instruction word transfers into the same gate of the same target
// segment on every execution — so the resolved outcome (new ring, whether
// the ring changed) can be memoized per site and replayed without
// re-fetching the target SDW or re-running ResolveCall/ResolveReturn.
//
// Like the verdict cache, an entry is purely derived state and its
// correctness rests on one invariant:
//
//   a valid entry implies the SDW cache holds the target segment's
//   descriptor, unchanged since the entry was filled.
//
// The invariant is enforced with two stamps. flush_epoch is
// SdwCache::flush_epoch() at fill time (DBR reloads and wholesale flushes
// bump it). slot_epoch is this cache's own per-SDW-slot generation at
// fill time: the Cpu bumps the target's slot on every SDW-cache insert
// into it, every fault-injected register drop of it, and every
// InvalidateSdw — exactly the sites that can change or evict what the
// slot holds between two crossings. Under the invariant the memoized
// outcome is a pure function of the entry's key (site, target, rings), so
// replaying it charges exactly what the slow path charges on an SDW-cache
// hit and the simulation stays bit-identical with the cache on or off.
//
// A polymorphic site (computed target, alternating rings) simply misses
// on the key compare and is refilled — the megamorphic fallback is the
// existing slow path, which this cache never bypasses on a miss.
#ifndef SRC_CPU_CROSSING_CACHE_H_
#define SRC_CPU_CROSSING_CACHE_H_

#include <array>
#include <cstdint>

#include "src/core/ring.h"
#include "src/cpu/sdw_cache.h"
#include "src/mem/word.h"

namespace rings {

class CrossingCache {
 public:
  static constexpr size_t kEntries = 64;  // direct-mapped by call site

  struct Entry {
    // The match key, packed into three words so the hit path compares
    // three values instead of probing eight fields: where the crossing
    // instruction was fetched from, the effective address it resolved
    // with, and (ring_key) CALL/RETURN discrimination plus the effective
    // and executing rings. ring_key carries a set low bit for every
    // filled entry, so the zero-initialized state can never match.
    uint64_t site_key = 0;
    uint64_t target_key = 0;
    uint32_t ring_key = 0;
    // Validity stamps (see the invariant above).
    uint64_t flush_epoch = 0;
    uint64_t slot_epoch = 0;
    // Memoized resolution.
    Ring new_ring = 0;
    bool ring_changed = false;
  };

  static uint64_t PackAddr(Segno segno, Wordno wordno) {
    return (static_cast<uint64_t>(segno) << 32) | static_cast<uint64_t>(wordno);
  }
  static uint32_t PackRings(bool is_call, Ring tpr_ring, Ring old_ring) {
    return 1u | (static_cast<uint32_t>(is_call) << 1) | (static_cast<uint32_t>(tpr_ring) << 8) |
           (static_cast<uint32_t>(old_ring) << 16);
  }

  Entry& SlotFor(Segno site_segno, Wordno site_wordno) {
    return entries_[Index(site_segno, site_wordno)];
  }

  // Whether `e` may answer a crossing at (site, target, rings) right now.
  // The caller supplies the live SDW-cache flush epoch.
  bool Valid(const Entry& e, bool is_call, Segno site_segno, Wordno site_wordno,
             Segno target_segno, Wordno target_wordno, Ring tpr_ring, Ring old_ring,
             uint64_t sdw_flush_epoch) const {
    return e.site_key == PackAddr(site_segno, site_wordno) &&
           e.target_key == PackAddr(target_segno, target_wordno) &&
           e.ring_key == PackRings(is_call, tpr_ring, old_ring) &&
           e.flush_epoch == sdw_flush_epoch &&
           e.slot_epoch == slot_epochs_[target_segno % SdwCache::kEntries];
  }

  // Fills `e` with the resolution of the crossing it just missed on; the
  // caller's own SDW fetch has already bumped the target's slot epoch, so
  // the stamps captured here are the post-fetch ones.
  void Fill(Entry& e, bool is_call, Segno site_segno, Wordno site_wordno, Segno target_segno,
            Wordno target_wordno, Ring tpr_ring, Ring old_ring, uint64_t sdw_flush_epoch,
            Ring new_ring, bool ring_changed) {
    e.site_key = PackAddr(site_segno, site_wordno);
    e.target_key = PackAddr(target_segno, target_wordno);
    e.ring_key = PackRings(is_call, tpr_ring, old_ring);
    e.flush_epoch = sdw_flush_epoch;
    e.slot_epoch = SlotEpoch(target_segno);
    e.new_ring = new_ring;
    e.ring_changed = ring_changed;
  }

  // The current generation of the SDW slot the target maps to; captured
  // into entries at fill time.
  uint64_t SlotEpoch(Segno target_segno) const {
    return slot_epochs_[target_segno % SdwCache::kEntries];
  }

  // The SDW register at `index` changed (insert, fault drop): any memo
  // whose target mapped there can no longer vouch for it.
  void InvalidateSdwSlot(size_t index) { ++slot_epochs_[index % SdwCache::kEntries]; }
  // Supervisor edit of `segno`'s descriptor (InvalidateSdw).
  void InvalidateTarget(Segno segno) { InvalidateSdwSlot(segno % SdwCache::kEntries); }

  void Flush() {
    for (Entry& e : entries_) {
      e.ring_key = 0;  // no packed key has a clear low bit
    }
  }

 private:
  static size_t Index(Segno segno, Wordno wordno) {
    return (wordno ^ (static_cast<uint32_t>(segno) * 0x9E3779B1u)) & (kEntries - 1);
  }

  std::array<Entry, kEntries> entries_{};
  std::array<uint64_t, SdwCache::kEntries> slot_epochs_{};
};

}  // namespace rings

#endif  // SRC_CPU_CROSSING_CACHE_H_

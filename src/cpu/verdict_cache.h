// Per-(segment, effective-ring) access-verdict cache: the host-side fast
// path's memo of the Figure 4-7 validations. The paper's hardware latches
// a validated descriptor so consecutive references to the same segment do
// not repeat the bracket comparisons; this cache is the simulator's
// equivalent, collapsing CheckRead/CheckWrite/CheckExecute/
// CheckIndirectRead plus the SDW's addressing fields into one probe.
//
// A verdict is purely derived state: it changes nothing the simulated
// machine can observe. Correctness therefore rests on one invariant —
//
//   a valid entry with a current epoch implies the SDW cache holds the
//   same segment's descriptor, unchanged since the verdict was filled.
//
// The epoch is SdwCache::flush_epoch() (bumped on every flush, including
// DBR reloads); slot-level invalidation is mirrored by the Cpu on every
// SDW insert/eviction, InvalidateSdw, and fault-injected cache drop. The
// slot geometry is identical to SdwCache so the mirroring is index-exact.
// Under that invariant the fast path charges exactly the cycles and
// counters of the slow path taken with an SDW-cache hit, so simulated
// time is bit-identical with the fast path on or off.
#ifndef SRC_CPU_VERDICT_CACHE_H_
#define SRC_CPU_VERDICT_CACHE_H_

#include <array>
#include <cstdint>

#include "src/core/ring.h"
#include "src/cpu/sdw_cache.h"
#include "src/mem/sdw.h"
#include "src/mem/word.h"

namespace rings {

class VerdictCache {
 public:
  // Same geometry as the SDW cache: verdict slot i can only vouch for a
  // segment the SDW cache could hold in its slot i.
  static constexpr size_t kEntries = SdwCache::kEntries;

  struct Entry {
    bool valid = false;
    Segno segno = 0;
    Ring ring = 0;       // the effective ring the verdicts were computed for
    uint64_t epoch = 0;  // SdwCache::flush_epoch() at fill time

    // Precomputed Check* outcomes for (access, ring).
    bool read_ok = false;
    bool write_ok = false;
    bool execute_ok = false;
    bool indirect_ok = false;

    // Addressing and access fields the fast path needs downstream.
    AbsAddr base = 0;
    uint64_t bound = 0;
    bool paged = false;
    bool flags_execute = false;  // SDW execute flag (store-to-code detection)
    Ring r1 = 0;                 // top of write bracket (indirect ring max)
  };

  // Returns the entry when it vouches for (segno, ring) at `epoch`,
  // nullptr otherwise. Pure probe: no statistics, no state change.
  const Entry* Lookup(Segno segno, Ring ring, uint64_t epoch) const {
    const Entry& e = entries_[segno % kEntries];
    if (e.valid && e.segno == segno && e.ring == ring && e.epoch == epoch) {
      return &e;
    }
    return nullptr;
  }

  // Memoizes the verdicts for `sdw` as seen by `ring`. Only call when the
  // SDW cache currently holds `segno` (see the invariant above).
  void Fill(Segno segno, Ring ring, uint64_t epoch, const Sdw& sdw);

  // Drops the slot that could vouch for `segno` (SDW edited or evicted).
  void InvalidateSegment(Segno segno) { entries_[segno % kEntries].valid = false; }
  // Drops by cache index (mirrors SdwCache::InvalidateIndex).
  void InvalidateSlot(size_t index) { entries_[index % kEntries].valid = false; }
  void Flush();

 private:
  std::array<Entry, kEntries> entries_{};
};

}  // namespace rings

#endif  // SRC_CPU_VERDICT_CACHE_H_

// A small direct-mapped descriptor cache. The 645-era hardware kept
// recently used SDWs in fast associative registers so that address
// translation did not walk the descriptor segment on every reference; the
// cycle model charges a descriptor fetch only on a miss. The cache must be
// flushed whenever the DBR changes or the supervisor edits an SDW.
#ifndef SRC_CPU_SDW_CACHE_H_
#define SRC_CPU_SDW_CACHE_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/mem/sdw.h"
#include "src/mem/word.h"

namespace rings {

class SdwCache {
 public:
  static constexpr size_t kEntries = 16;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    Flush();
  }

  // Lookup/Peek/Insert sit on the per-reference path, so they live in the
  // header and inline to an index, a tag compare, and a copy.
  std::optional<Sdw> Lookup(Segno segno) const {
    if (!enabled_) {
      ++misses_;
      return std::nullopt;
    }
    const Entry& e = entries_[segno % kEntries];
    if (e.valid && e.segno == segno) {
      ++hits_;
      return e.sdw;
    }
    ++misses_;
    return std::nullopt;
  }
  // Like Lookup, but does not count a hit or miss: used by the supervisor's
  // fault-recovery path to inspect what the processor believes without
  // perturbing the cache statistics.
  std::optional<Sdw> Peek(Segno segno) const {
    if (!enabled_) {
      return std::nullopt;
    }
    const Entry& e = entries_[segno % kEntries];
    if (e.valid && e.segno == segno) {
      return e.sdw;
    }
    return std::nullopt;
  }
  void Insert(Segno segno, const Sdw& sdw) {
    if (!enabled_) {
      return;
    }
    entries_[segno % kEntries] = Entry{true, segno, sdw};
  }
  void Invalidate(Segno segno);
  // Invalidates by cache index rather than segment number (fault injection:
  // a dropped associative register, whatever it happened to hold).
  void InvalidateIndex(size_t index);
  // The segment number held by the register at `index`, if any — lets the
  // fault-drop site retire derived state (TLB translations) for whatever
  // segment the dropped register happened to describe.
  std::optional<Segno> SegnoAtIndex(size_t index) const {
    const Entry& e = entries_[index % kEntries];
    return e.valid ? std::optional<Segno>(e.segno) : std::nullopt;
  }
  void Flush();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Counts a hit without a lookup: the verdict fast path (src/cpu) proves
  // residency by invariant instead of probing, but the statistics must
  // read as if the probe happened.
  void CountHit() const { ++hits_; }

  // Incremented by every Flush (DBR reload, enable toggle, supervisor
  // flush). Derived caches stamp entries with this epoch so a flush
  // invalidates them in O(1).
  uint64_t flush_epoch() const { return flush_epoch_; }

  // --- snapshot support (src/snapshot) -----------------------------------
  // The descriptor cache is timing-architectural: the cycle model charges
  // a descriptor fetch only on a miss and hits/misses feed architectural
  // counters, so a restored machine must resume with the exact entries
  // and statistics the live one had (unlike the host-only verdict, insn,
  // TLB and block caches, which are dropped and rebuilt).
  struct SnapshotEntry {
    bool valid = false;
    Segno segno = 0;
    Sdw sdw;
  };
  SnapshotEntry SnapshotAt(size_t index) const {
    const Entry& e = entries_[index % kEntries];
    return SnapshotEntry{e.valid, e.segno, e.sdw};
  }
  void RestoreEntry(size_t index, bool valid, Segno segno, const Sdw& sdw) {
    entries_[index % kEntries] = Entry{valid, segno, sdw};
  }
  void RestoreStats(uint64_t hits, uint64_t misses) {
    hits_ = hits;
    misses_ = misses;
  }

 private:
  struct Entry {
    bool valid = false;
    Segno segno = 0;
    Sdw sdw;
  };

  bool enabled_ = true;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
  uint64_t flush_epoch_ = 0;
  std::array<Entry, kEntries> entries_{};
};

}  // namespace rings

#endif  // SRC_CPU_SDW_CACHE_H_

// The simulated processor. Implements the instruction cycle of the
// paper's Figures 4-9: instruction fetch with execute-bracket validation,
// effective-address formation with ring maximization over pointer
// registers and indirect words, operand access validation, the advance
// check for transfers, and the CALL/RETURN instructions that change the
// ring of execution without supervisor intervention.
#ifndef SRC_CPU_CPU_H_
#define SRC_CPU_CPU_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/access.h"
#include "src/core/transfer.h"
#include "src/cpu/block_cache.h"
#include "src/cpu/crossing_cache.h"
#include "src/cpu/insn_cache.h"
#include "src/cpu/registers.h"
#include "src/fault/fault_injector.h"
#include "src/cpu/sdw_cache.h"
#include "src/cpu/shared_decode.h"
#include "src/cpu/tlb.h"
#include "src/cpu/trap.h"
#include "src/cpu/verdict_cache.h"
#include "src/isa/indirect_word.h"
#include "src/isa/instruction.h"
#include "src/mem/descriptor_segment.h"
#include "src/mem/physical_memory.h"
#include "src/trace/counters.h"
#include "src/trace/cycle_model.h"
#include "src/trace/event_trace.h"

namespace rings {

// Which access-control hardware the processor is equipped with.
//   kRingHardware: the paper's design — ring fields in SDWs, PRs and
//     indirect words, effective-ring validation, CALL/RETURN crossing.
//   kFlags645:     the Honeywell-645-style base used as the software-rings
//     baseline — SDWs carry only R/W/E flags (ring fields ignored), there
//     are no CALL/RETURN instructions, and rings must be built in software
//     with one descriptor segment per ring and trap-based crossings
//     (src/b645).
enum class ProtectionMode {
  kRingHardware,
  kFlags645,
};

inline constexpr unsigned kMaxIndirectionDepth = 64;

class Cpu {
 public:
  explicit Cpu(PhysicalMemory* memory, CycleModel cycle_model = CycleModel::Default());

  RegisterFile& regs() { return regs_; }
  const RegisterFile& regs() const { return regs_; }
  // The TPR after the most recent effective-address calculation (internal
  // register, exposed for tests and the supervisor's trap emulation).
  const Tpr& tpr() const { return tpr_; }

  ProtectionMode mode() const { return mode_; }
  void set_mode(ProtectionMode mode) { mode_ = mode; }

  // When false, all Figure 4-9 validations are skipped (used by the
  // overhead-claim benchmark to measure what the checks cost).
  bool checks_enabled() const { return checks_enabled_; }
  void set_checks_enabled(bool enabled) { checks_enabled_ = enabled; }

  SdwCache& sdw_cache() { return sdw_cache_; }
  const SdwCache& sdw_cache() const { return sdw_cache_; }

  // Host-side fast path: the access-verdict and decoded-instruction
  // caches. Purely a host optimization — simulated cycles, counters, trap
  // sequences and the fault-injection stream are bit-identical with the
  // fast path on or off (tests/integration/fastpath_differential_test.cc).
  // It also disengages automatically while the SDW cache is disabled, so
  // the ablation benchmarks measure what they claim to.
  bool fast_path_enabled() const { return fast_path_enabled_; }
  void set_fast_path_enabled(bool enabled) {
    fast_path_enabled_ = enabled;
    verdict_cache_.Flush();
    insn_cache_.Flush();
    tlb_.Flush();
    block_cache_.Flush();
    crossing_cache_.Flush();
  }
  const VerdictCache& verdict_cache() const { return verdict_cache_; }
  const InsnCache& insn_cache() const { return insn_cache_; }
  const Tlb& tlb() const { return tlb_; }

  // Superblock execution engine (see DESIGN.md): decoded straight-line
  // blocks executed by StepBlock through a tight pre-decoded inner loop.
  // Rides on the fast path (disengages while fast_path or the SDW cache
  // is off); like the other host-side caches it never changes simulated
  // cycles, counters, trap sequences, or the fault-injection stream.
  bool block_engine_enabled() const { return block_engine_enabled_; }
  void set_block_engine_enabled(bool enabled) {
    block_engine_enabled_ = enabled;
    block_cache_.Flush();
  }
  const BlockCache& block_cache() const { return block_cache_; }

  // Direct block chaining + the monomorphic CALL/RETURN crossing cache
  // (see DESIGN.md §7). Both ride on the block engine / fast path and,
  // like them, never change simulated cycles, counters, trap sequences,
  // or the fault-injection stream. One switch governs both: they are two
  // halves of the same dispatch optimization (the crossing cache is what
  // lets a CALL-terminated block chain straight into its callee).
  bool chain_enabled() const { return chain_enabled_; }
  void set_chain_enabled(bool enabled) {
    chain_enabled_ = enabled;
    // Retire every patched link (the generation bump kills their stamps)
    // and every memoized crossing.
    block_cache_.Flush();
    crossing_cache_.Flush();
  }
  const CrossingCache& crossing_cache() const { return crossing_cache_; }

  // Test-only sabotage of the chaining engine, the chaining analog of
  // block_call_ablation: every followed successor link charges one
  // spurious cycle the per-instruction path never charges. Used by the
  // fuzz harness to prove the oracle catches (and the shrinker minimizes)
  // a chaining bug. Never set outside tests and --fuzz-ablation paths.
  bool chain_ablation() const { return chain_ablation_; }
  void set_chain_ablation(bool enabled) { chain_ablation_ = enabled; }

  // Fleet-shared read-only decode (see src/cpu/shared_decode.h). The
  // machine attaches the per-segno decoded tables after program load; the
  // slow fetch path consults them after reading the live word and falls
  // back to live decode on any mismatch (the CoW split). Host-only: the
  // image never changes what a fetch charges or traps.
  void AttachDecodeImage(
      std::shared_ptr<const SharedDecodeImage> image,
      const std::vector<std::pair<Segno, const SharedDecodeImage::Segment*>>& map) {
    for (const auto& [segno, seg] : map) {
      if (decode_map_.size() <= segno) {
        decode_map_.resize(static_cast<size_t>(segno) + 1, nullptr);
      }
      decode_map_[segno] = seg;
    }
    decode_images_.push_back(std::move(image));
  }
  bool has_decode_image() const { return !decode_images_.empty(); }
  // Clone support (Machine::CloneFrom): share the parent's attached decode
  // images and per-segno map wholesale. The images are immutable after
  // publication, so aliasing them is free and safe across threads.
  void CopyDecodeTablesFrom(const Cpu& parent) {
    decode_images_ = parent.decode_images_;
    decode_map_ = parent.decode_map_;
  }
  // Host bytes of decoded tables this machine references (shared or
  // private); bench_fleet reports the fleet-wide dedup from this.
  size_t decode_image_bytes() const {
    size_t total = 0;
    for (const auto& image : decode_images_) {
      total += image->bytes();
    }
    return total;
  }

  // Test-only sabotage of the superblock engine, used by the fuzz
  // harness (src/fuzz) to prove its differential oracle catches a broken
  // engine: every CALL executed from inside a block charges one spurious
  // cycle the per-instruction path never charges — exactly the class of
  // bug (a host execution path drifting from the architectural one) the
  // fuzzer exists to catch. Never set outside tests and --fuzz-ablation.
  bool block_call_ablation() const { return block_call_ablation_; }
  void set_block_call_ablation(bool enabled) { block_call_ablation_ = enabled; }

  // Hardware fault injection (nullptr = disabled; the hooks are a single
  // pointer test when off). The injector is consulted at SDW fetch, at
  // instruction boundaries (cache drops, spurious page faults), and when
  // indirect words are retrieved.
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // Executes one instruction. No-op while a trap is pending. Returns true
  // if an instruction was retired, false if the processor is frozen on a
  // trap.
  bool Step();

  // Executes up to one straight-line block of instructions (at least one,
  // like Step) and stops before any instruction whose boundary conditions
  // the run loop must service: `cycle_bound` is the absolute cycle count
  // at which the caller's loop would stop stepping (its cycle budget or
  // the next due I/O completion), and a latched physical-store fault,
  // timer runout, pending trap, or any cache invalidation under the block
  // ends it early. Degrades to exactly Step() when the block engine or
  // fast path is off. Returns what Step would have returned for the last
  // instruction executed.
  bool StepBlock(uint64_t cycle_bound);

  bool trap_pending() const { return trap_pending_; }
  const TrapState& trap_state() const { return trap_state_; }

  // Supervisor interface ------------------------------------------------

  // Acknowledges the pending trap without resuming (the machine is about
  // to dispatch it). The state stays available for Rett.
  TrapState TakeTrap();

  // The RETT operation: restores processor state (possibly edited by the
  // supervisor) and resumes. Charges the RETT cycle cost and flushes the
  // descriptor cache if the DBR changed.
  void Rett(const RegisterFile& state);

  // Loads a new DBR (process switch) and flushes the descriptor cache.
  void SetDbr(const DbrValue& dbr);

  // Must be called whenever supervisor code edits an SDW that this
  // processor may have cached. Also drops the derived fast-path state: a
  // new descriptor may change verdicts, the segment's base, or what the
  // segment's words decode to.
  void InvalidateSdw(Segno segno) {
    sdw_cache_.Invalidate(segno);
    verdict_cache_.InvalidateSegment(segno);
    // Crossing memos targeting this segment were resolved through the
    // edited descriptor.
    crossing_cache_.InvalidateTarget(segno);
    insn_cache_.InvalidateSegment(segno);
    // The descriptor may have pointed the segment at a different page
    // table; every translation derived through it is suspect.
    tlb_.InvalidateSegment(segno);
    counters_.block_invalidations += block_cache_.InvalidateSegment(segno);
    ++counters_.verdict_invalidations;
    ++counters_.insn_cache_invalidations;
    ++counters_.tlb_invalidations;
  }
  void FlushSdwCache() {
    sdw_cache_.Flush();  // epoch bump retires every verdict
    insn_cache_.Flush();
    tlb_.Flush();
    block_cache_.Flush();
    ++counters_.verdict_invalidations;
    ++counters_.insn_cache_invalidations;
    ++counters_.tlb_invalidations;
    ++counters_.block_invalidations;
  }

  // Must be called after memory is written behind the processor's back
  // (program loading, test pokes, DMA-style stores): any of those words
  // may be a cached decoded instruction.
  void FlushInsnCache() {
    insn_cache_.Flush();
    // Blocks are chains of cached decodes; they go with them.
    block_cache_.Flush();
    ++counters_.insn_cache_invalidations;
    ++counters_.block_invalidations;
  }

  // Companion to FlushInsnCache for the same behind-the-back stores: any
  // written word may be a page-table word some cached translation was
  // decoded from.
  void FlushTlb() {
    tlb_.Flush();
    ++counters_.tlb_invalidations;
  }

  // Must be called when supervisor software stores a page-table word it
  // can name precisely (demand fill, page-table edits); `ptw_addr` is the
  // absolute address of the stored PTW. Cheaper than FlushTlb and exact.
  void NotePtwStore(AbsAddr ptw_addr) {
    tlb_.NoteStore(ptw_addr);
    ++counters_.tlb_invalidations;
  }

  // Injects an asynchronous trap (timer runout, I/O completion) that will
  // be taken before the next instruction. The saved state resumes exactly
  // where execution stopped.
  void InjectTrap(TrapCause cause, int64_t code = 0);

  // Scheduling quantum: when enabled, decremented once per instruction;
  // reaching zero raises kTimerRunout.
  void SetTimer(int64_t instructions) {
    timer_ = instructions;
    timer_enabled_ = instructions > 0;
  }
  int64_t timer() const { return timer_; }
  bool timer_enabled() const { return timer_enabled_; }

  // --- snapshot support (src/snapshot) ----------------------------------
  // Exact state restore, used only by the snapshot reader after it has
  // flushed every derived cache. Unlike Rett/SetDbr/SetTimer these charge
  // nothing and flush nothing: the image already carries the exact cycle
  // count, counters, and descriptor-cache contents to reinstate.
  void RestoreExecutionState(const RegisterFile& regs, const Tpr& tpr, uint64_t cycles) {
    regs_ = regs;
    tpr_ = tpr;
    cycles_ = cycles;
  }
  void RestoreTrapState(bool pending, const TrapState& state) {
    trap_pending_ = pending;
    trap_state_ = state;
  }
  void RestoreTimer(bool enabled, int64_t value) {
    timer_enabled_ = enabled;
    timer_ = value;
  }

  // Privileged SIO instructions are routed here (device = reg field,
  // operand = the IOCB word read from memory).
  void set_sio_handler(std::function<void(uint8_t, Word)> handler) {
    sio_handler_ = std::move(handler);
  }

  // Accounting -----------------------------------------------------------

  uint64_t cycles() const { return cycles_; }
  void ChargeCycles(uint64_t cycles) { cycles_ += cycles; }
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  const CycleModel& cycle_model() const { return cycle_model_; }

  void set_trace(EventTrace* trace) { trace_ = trace; }

  // Descriptor-segment access for the supervisor (bypasses the cache).
  std::optional<Sdw> ReadSdw(Segno segno) const;

  // Virtual-memory helpers used by the supervisor's C++ services when it
  // references guest memory on behalf of a process; validation is applied
  // with the supplied effective ring so supervisor services can "assume
  // the access capabilities of a higher numbered ring" exactly as the
  // hardware would. Returns the trap cause on denial without freezing the
  // processor.
  TrapCause SupervisorRead(Segno segno, Wordno wordno, Ring effective_ring, Word* out);
  TrapCause SupervisorWrite(Segno segno, Wordno wordno, Ring effective_ring, Word value);
  // Unvalidated (ring-0) variants: the supervisor touching its own or any
  // segment's words through the current virtual memory.
  TrapCause SupervisorReadRaw(Segno segno, Wordno wordno, Word* out);
  TrapCause SupervisorWriteRaw(Segno segno, Wordno wordno, Word value);

 private:
  // --- instruction-cycle phases (see cpu.cc for figure mapping) ---
  // The per-instruction boundary work shared by Step and the block inner
  // loop: trap-capture state reset, the quantum timer, and the
  // fault-injection hooks. Runs exactly once before every instruction so
  // the injector's RNG stream is identical with blocks on or off. Returns
  // false when a boundary trap (timer runout, injected fault) was raised.
  bool InstructionBoundary();
  // The fault-injection opportunities of the boundary, split out so the
  // common no-injector boundary stays small enough to inline into the
  // block inner loop.
  bool BoundaryInjectionHooks();
  // Fetches, validates, and executes one instruction; the remainder of
  // Step after InstructionBoundary. The block engine falls back to this
  // (after its own boundary call) whenever a block cannot vouch for the
  // next instruction.
  bool StepBody();
  bool FetchInstruction(Instruction* ins);
  bool FormEffectiveAddress(const Instruction& ins);
  // The indirection loop of Figure 5, split out of FormEffectiveAddress
  // so the direct-operand case (the overwhelming majority) inlines into
  // the per-op loops without dragging the chase along.
  bool ChaseIndirectWords();
  void Execute(const Instruction& ins);

  // --- superblock engine (see DESIGN.md) ---
  // Whether `block` still describes what the per-instruction path would
  // do at (segno, start) under the current verdict `v`.
  bool BlockCurrent(const BlockCache::Block& block, const VerdictCache::Entry& v) const {
    return block.ring == regs_.ipr.ring && block.checks == checks_enabled_ &&
           block.paged == v.paged && block.base == v.base &&
           static_cast<uint64_t>(block.start) + block.count <= v.bound;
  }
  // Chains cached decodes starting at the current IPR into a block;
  // returns nullptr when nothing is cacheable there yet. Mutable: the
  // chaining engine patches successor links into published blocks.
  BlockCache::Block* TryBuildBlock(const VerdictCache::Entry& v);
  // The full dispatch preamble of StepBlock: verdict probe, block lookup
  // (counting a hit) or build. Returns nullptr when the per-instruction
  // path must take this dispatch.
  BlockCache::Block* ProbeOrBuildBlock();
  // True for opcodes that must end a block: control transfers, trap
  // raisers, and state-changing privileged instructions.
  static bool EndsBlock(Opcode op);
  // Whether the chaining engine may continue past a completed block whose
  // last opcode is `op`. A subset of the EndsBlock set: trap raisers
  // never reach the chain point (the trap ends the dispatch), and SIO /
  // LDBR are excluded — SIO schedules I/O the run loop must fold into its
  // next cycle bound, and LDBR's flush kills every link stamp anyway.
  static bool ChainEligible(Opcode op);
  // Whether the CALL/RETURN crossing cache may fill and answer: ring
  // hardware with checks on, riding the same host caches as chaining.
  bool CrossingCacheEnabled() const {
    return chain_enabled_ && checks_enabled_ && fast_path_enabled_ && sdw_cache_.enabled() &&
           mode_ == ProtectionMode::kRingHardware;
  }
  // The shared-decode entry covering (segno, wordno), if any.
  const SharedDecodeImage::Entry* DecodeImageEntry(Segno segno, Wordno wordno) const {
    if (segno >= decode_map_.size()) {
      return nullptr;
    }
    const SharedDecodeImage::Segment* seg = decode_map_[segno];
    if (seg == nullptr || wordno >= seg->words.size()) {
      return nullptr;
    }
    return &seg->words[wordno];
  }

  // --- per-opcode execute handlers; both the per-instruction path and
  // the block inner loop dispatch through the Execute switch so the
  // compiler can inline the hot handlers ---
  void OpNop(const Instruction& ins);
  void OpLda(const Instruction& ins);
  void OpLdq(const Instruction& ins);
  void OpLdx(const Instruction& ins);
  void OpSta(const Instruction& ins);
  void OpStq(const Instruction& ins);
  void OpStx(const Instruction& ins);
  void OpStz(const Instruction& ins);
  void OpLdai(const Instruction& ins);
  void OpLdqi(const Instruction& ins);
  void OpLdxi(const Instruction& ins);
  void OpAdai(const Instruction& ins);
  void OpAda(const Instruction& ins);
  void OpSba(const Instruction& ins);
  void OpMpy(const Instruction& ins);
  void OpAna(const Instruction& ins);
  void OpOra(const Instruction& ins);
  void OpEra(const Instruction& ins);
  void OpAls(const Instruction& ins);
  void OpArs(const Instruction& ins);
  void OpNega(const Instruction& ins);
  void OpXaq(const Instruction& ins);
  void OpAos(const Instruction& ins);
  void OpEpp(const Instruction& ins);
  void OpSpp(const Instruction& ins);
  void OpTra(const Instruction& ins);
  void OpTze(const Instruction& ins);
  void OpTnz(const Instruction& ins);
  void OpTmi(const Instruction& ins);
  void OpTpl(const Instruction& ins);
  void OpCall(const Instruction& ins);
  void OpRet(const Instruction& ins);
  void OpMme(const Instruction& ins);
  void OpSvc(const Instruction& ins);
  void OpLdbr(const Instruction& ins);
  void OpRett(const Instruction& ins);
  void OpSio(const Instruction& ins);
  void OpHlt(const Instruction& ins);
  void OpIllegal(const Instruction& ins);

  // SDW fetch with descriptor cache and missing-segment trap.
  bool FetchSdw(Segno segno, Sdw* out);
  // Bounds check against an SDW; raises kBoundsViolation.
  bool CheckBounds(const Sdw& sdw, Wordno wordno);

  // Final address resolution, including the page-table walk for paged
  // segments. Returns kNone or kMissingPage; does not raise a trap (some
  // callers report instead). Charges the PTW fetch.
  TrapCause ResolveAddress(const Sdw& sdw, Segno segno, Wordno wordno, AbsAddr* out);
  // Trap-raising wrapper used on the instruction-cycle paths.
  bool ResolveOrFault(const Sdw& sdw, Segno segno, Wordno wordno, AbsAddr* out);
  // The architectural page-table walk, shared by the slow path, the fast
  // path, and the supervisor access paths: charges one memory reference
  // and counts a page walk unconditionally, then answers from the TLB
  // when it can and reads + decodes the PTW (memoizing the translation)
  // when it cannot. Sets pending_fault_addr_ and returns kMissingPage for
  // an absent page; never raises a trap itself.
  TrapCause WalkPageTable(AbsAddr table_base, Segno segno, Wordno wordno, AbsAddr* out);

  // Operand access paths (Figure 6).
  bool ReadOperand(Word* out);
  bool WriteOperand(Word value);

  // --- host-side fast path (see DESIGN.md) ---

  // Probes the verdict cache for (segno, effective ring). Non-null only
  // when the fast path may vouch for the reference: fast path enabled,
  // SDW cache enabled, entry present with the current flush epoch.
  const VerdictCache::Entry* FastVerdict(Segno segno, Ring ring) {
    if (!fast_path_enabled_ || !sdw_cache_.enabled()) {
      return nullptr;
    }
    return verdict_cache_.Lookup(segno, ring, sdw_cache_.flush_epoch());
  }
  // Memoizes verdicts after a successful slow-path FetchSdw (which left
  // the descriptor resident in the SDW cache).
  void FillVerdict(Segno segno, Ring ring, const Sdw& sdw) {
    if (!fast_path_enabled_ || !sdw_cache_.enabled()) {
      return;
    }
    ++counters_.verdict_misses;
    verdict_cache_.Fill(segno, ring, sdw_cache_.flush_epoch(), sdw);
  }
  // ResolveOrFault against a verdict entry instead of an SDW; identical
  // charges, counters and missing-page behavior.
  bool FastResolve(const VerdictCache::Entry& v, Segno segno, Wordno wordno, AbsAddr* out);
  // Whether the TLB may be consulted: same gating as the verdict cache,
  // so the ablation benchmarks (SDW cache off) measure what they claim.
  bool TlbEnabled() const { return fast_path_enabled_ && sdw_cache_.enabled(); }
  // Post-store bookkeeping shared by the guest and supervisor write
  // paths: invalidates cached decodes when the target is executable, and
  // snoops stores that land inside the descriptor segment (an SDW edit
  // the processor may have cached).
  void NoteStore(AbsAddr addr, bool target_executable, Segno segno);

  // CALL / RETURN (Figures 8 and 9).
  void ExecuteCall();
  void ExecuteReturn();
  // Transfer instructions other than CALL/RETURN (Figure 7).
  void ExecuteTransfer();

  // Raises a trap with the state captured at instruction fetch (the
  // disrupted instruction can be resumed).
  void RaiseTrap(TrapCause cause, int64_t code = 0);
  // Raises a service trap whose saved IPR addresses the next instruction.
  void RaiseServiceTrap(TrapCause cause, int64_t code);

  // The effective validation ring under the current protection mode: ring
  // hardware validates against the given ring; the 645 base has no ring
  // fields, so everything validates as ring 0 (flags only).
  Ring EffectiveRing(Ring ring) const {
    return mode_ == ProtectionMode::kRingHardware ? ring : 0;
  }

  PhysicalMemory* memory_;
  CycleModel cycle_model_;
  ProtectionMode mode_ = ProtectionMode::kRingHardware;
  bool checks_enabled_ = true;

  RegisterFile regs_;
  Tpr tpr_{};
  Instruction current_ins_{};
  // The IPR as of the current instruction's fetch. Trap capture rebuilds
  // the full at-fetch register file from the live one plus this (see
  // RaiseTrap): handlers raise before modifying any other register, so
  // only the IPR needs saving at the (hot) instruction boundary.
  Ipr ipr_at_fetch_{};

  bool trap_pending_ = false;
  TrapState trap_state_{};
  SegAddr pending_fault_addr_{};

  bool timer_enabled_ = false;
  int64_t timer_ = 0;

  SdwCache sdw_cache_;
  bool fast_path_enabled_ = true;
  VerdictCache verdict_cache_;
  InsnCache insn_cache_;
  Tlb tlb_;
  bool block_engine_enabled_ = true;
  bool block_call_ablation_ = false;
  BlockCache block_cache_;
  bool chain_enabled_ = true;
  bool chain_ablation_ = false;
  CrossingCache crossing_cache_;
  // Shared decode: refcounts pin the attached images; decode_map_ indexes
  // their per-segment tables by segno.
  std::vector<std::shared_ptr<const SharedDecodeImage>> decode_images_;
  std::vector<const SharedDecodeImage::Segment*> decode_map_;
  FaultInjector* fault_injector_ = nullptr;
  uint64_t cycles_ = 0;
  Counters counters_;
  EventTrace* trace_ = nullptr;
  std::function<void(uint8_t, Word)> sio_handler_;
};

}  // namespace rings

#endif  // SRC_CPU_CPU_H_

// The simulated processor. Implements the instruction cycle of the
// paper's Figures 4-9: instruction fetch with execute-bracket validation,
// effective-address formation with ring maximization over pointer
// registers and indirect words, operand access validation, the advance
// check for transfers, and the CALL/RETURN instructions that change the
// ring of execution without supervisor intervention.
#ifndef SRC_CPU_CPU_H_
#define SRC_CPU_CPU_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "src/core/access.h"
#include "src/core/transfer.h"
#include "src/cpu/insn_cache.h"
#include "src/cpu/registers.h"
#include "src/fault/fault_injector.h"
#include "src/cpu/sdw_cache.h"
#include "src/cpu/tlb.h"
#include "src/cpu/trap.h"
#include "src/cpu/verdict_cache.h"
#include "src/isa/indirect_word.h"
#include "src/isa/instruction.h"
#include "src/mem/descriptor_segment.h"
#include "src/mem/physical_memory.h"
#include "src/trace/counters.h"
#include "src/trace/cycle_model.h"
#include "src/trace/event_trace.h"

namespace rings {

// Which access-control hardware the processor is equipped with.
//   kRingHardware: the paper's design — ring fields in SDWs, PRs and
//     indirect words, effective-ring validation, CALL/RETURN crossing.
//   kFlags645:     the Honeywell-645-style base used as the software-rings
//     baseline — SDWs carry only R/W/E flags (ring fields ignored), there
//     are no CALL/RETURN instructions, and rings must be built in software
//     with one descriptor segment per ring and trap-based crossings
//     (src/b645).
enum class ProtectionMode {
  kRingHardware,
  kFlags645,
};

inline constexpr unsigned kMaxIndirectionDepth = 64;

class Cpu {
 public:
  explicit Cpu(PhysicalMemory* memory, CycleModel cycle_model = CycleModel::Default());

  RegisterFile& regs() { return regs_; }
  const RegisterFile& regs() const { return regs_; }
  // The TPR after the most recent effective-address calculation (internal
  // register, exposed for tests and the supervisor's trap emulation).
  const Tpr& tpr() const { return tpr_; }

  ProtectionMode mode() const { return mode_; }
  void set_mode(ProtectionMode mode) { mode_ = mode; }

  // When false, all Figure 4-9 validations are skipped (used by the
  // overhead-claim benchmark to measure what the checks cost).
  bool checks_enabled() const { return checks_enabled_; }
  void set_checks_enabled(bool enabled) { checks_enabled_ = enabled; }

  SdwCache& sdw_cache() { return sdw_cache_; }
  const SdwCache& sdw_cache() const { return sdw_cache_; }

  // Host-side fast path: the access-verdict and decoded-instruction
  // caches. Purely a host optimization — simulated cycles, counters, trap
  // sequences and the fault-injection stream are bit-identical with the
  // fast path on or off (tests/integration/fastpath_differential_test.cc).
  // It also disengages automatically while the SDW cache is disabled, so
  // the ablation benchmarks measure what they claim to.
  bool fast_path_enabled() const { return fast_path_enabled_; }
  void set_fast_path_enabled(bool enabled) {
    fast_path_enabled_ = enabled;
    verdict_cache_.Flush();
    insn_cache_.Flush();
    tlb_.Flush();
  }
  const VerdictCache& verdict_cache() const { return verdict_cache_; }
  const InsnCache& insn_cache() const { return insn_cache_; }
  const Tlb& tlb() const { return tlb_; }

  // Hardware fault injection (nullptr = disabled; the hooks are a single
  // pointer test when off). The injector is consulted at SDW fetch, at
  // instruction boundaries (cache drops, spurious page faults), and when
  // indirect words are retrieved.
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // Executes one instruction. No-op while a trap is pending. Returns true
  // if an instruction was retired, false if the processor is frozen on a
  // trap.
  bool Step();

  bool trap_pending() const { return trap_pending_; }
  const TrapState& trap_state() const { return trap_state_; }

  // Supervisor interface ------------------------------------------------

  // Acknowledges the pending trap without resuming (the machine is about
  // to dispatch it). The state stays available for Rett.
  TrapState TakeTrap();

  // The RETT operation: restores processor state (possibly edited by the
  // supervisor) and resumes. Charges the RETT cycle cost and flushes the
  // descriptor cache if the DBR changed.
  void Rett(const RegisterFile& state);

  // Loads a new DBR (process switch) and flushes the descriptor cache.
  void SetDbr(const DbrValue& dbr);

  // Must be called whenever supervisor code edits an SDW that this
  // processor may have cached. Also drops the derived fast-path state: a
  // new descriptor may change verdicts, the segment's base, or what the
  // segment's words decode to.
  void InvalidateSdw(Segno segno) {
    sdw_cache_.Invalidate(segno);
    verdict_cache_.InvalidateSegment(segno);
    insn_cache_.InvalidateSegment(segno);
    // The descriptor may have pointed the segment at a different page
    // table; every translation derived through it is suspect.
    tlb_.InvalidateSegment(segno);
    ++counters_.verdict_invalidations;
    ++counters_.insn_cache_invalidations;
    ++counters_.tlb_invalidations;
  }
  void FlushSdwCache() {
    sdw_cache_.Flush();  // epoch bump retires every verdict
    insn_cache_.Flush();
    tlb_.Flush();
    ++counters_.verdict_invalidations;
    ++counters_.insn_cache_invalidations;
    ++counters_.tlb_invalidations;
  }

  // Must be called after memory is written behind the processor's back
  // (program loading, test pokes, DMA-style stores): any of those words
  // may be a cached decoded instruction.
  void FlushInsnCache() {
    insn_cache_.Flush();
    ++counters_.insn_cache_invalidations;
  }

  // Companion to FlushInsnCache for the same behind-the-back stores: any
  // written word may be a page-table word some cached translation was
  // decoded from.
  void FlushTlb() {
    tlb_.Flush();
    ++counters_.tlb_invalidations;
  }

  // Must be called when supervisor software stores a page-table word it
  // can name precisely (demand fill, page-table edits); `ptw_addr` is the
  // absolute address of the stored PTW. Cheaper than FlushTlb and exact.
  void NotePtwStore(AbsAddr ptw_addr) {
    tlb_.NoteStore(ptw_addr);
    ++counters_.tlb_invalidations;
  }

  // Injects an asynchronous trap (timer runout, I/O completion) that will
  // be taken before the next instruction. The saved state resumes exactly
  // where execution stopped.
  void InjectTrap(TrapCause cause, int64_t code = 0);

  // Scheduling quantum: when enabled, decremented once per instruction;
  // reaching zero raises kTimerRunout.
  void SetTimer(int64_t instructions) {
    timer_ = instructions;
    timer_enabled_ = instructions > 0;
  }
  int64_t timer() const { return timer_; }

  // Privileged SIO instructions are routed here (device = reg field,
  // operand = the IOCB word read from memory).
  void set_sio_handler(std::function<void(uint8_t, Word)> handler) {
    sio_handler_ = std::move(handler);
  }

  // Accounting -----------------------------------------------------------

  uint64_t cycles() const { return cycles_; }
  void ChargeCycles(uint64_t cycles) { cycles_ += cycles; }
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  const CycleModel& cycle_model() const { return cycle_model_; }

  void set_trace(EventTrace* trace) { trace_ = trace; }

  // Descriptor-segment access for the supervisor (bypasses the cache).
  std::optional<Sdw> ReadSdw(Segno segno) const;

  // Virtual-memory helpers used by the supervisor's C++ services when it
  // references guest memory on behalf of a process; validation is applied
  // with the supplied effective ring so supervisor services can "assume
  // the access capabilities of a higher numbered ring" exactly as the
  // hardware would. Returns the trap cause on denial without freezing the
  // processor.
  TrapCause SupervisorRead(Segno segno, Wordno wordno, Ring effective_ring, Word* out);
  TrapCause SupervisorWrite(Segno segno, Wordno wordno, Ring effective_ring, Word value);
  // Unvalidated (ring-0) variants: the supervisor touching its own or any
  // segment's words through the current virtual memory.
  TrapCause SupervisorReadRaw(Segno segno, Wordno wordno, Word* out);
  TrapCause SupervisorWriteRaw(Segno segno, Wordno wordno, Word value);

 private:
  // --- instruction-cycle phases (see cpu.cc for figure mapping) ---
  bool FetchInstruction(Instruction* ins);
  bool FormEffectiveAddress(const Instruction& ins);
  void Execute(const Instruction& ins);

  // SDW fetch with descriptor cache and missing-segment trap.
  bool FetchSdw(Segno segno, Sdw* out);
  // Bounds check against an SDW; raises kBoundsViolation.
  bool CheckBounds(const Sdw& sdw, Wordno wordno);

  // Final address resolution, including the page-table walk for paged
  // segments. Returns kNone or kMissingPage; does not raise a trap (some
  // callers report instead). Charges the PTW fetch.
  TrapCause ResolveAddress(const Sdw& sdw, Segno segno, Wordno wordno, AbsAddr* out);
  // Trap-raising wrapper used on the instruction-cycle paths.
  bool ResolveOrFault(const Sdw& sdw, Segno segno, Wordno wordno, AbsAddr* out);
  // The architectural page-table walk, shared by the slow path, the fast
  // path, and the supervisor access paths: charges one memory reference
  // and counts a page walk unconditionally, then answers from the TLB
  // when it can and reads + decodes the PTW (memoizing the translation)
  // when it cannot. Sets pending_fault_addr_ and returns kMissingPage for
  // an absent page; never raises a trap itself.
  TrapCause WalkPageTable(AbsAddr table_base, Segno segno, Wordno wordno, AbsAddr* out);

  // Operand access paths (Figure 6).
  bool ReadOperand(Word* out);
  bool WriteOperand(Word value);

  // --- host-side fast path (see DESIGN.md) ---

  // Probes the verdict cache for (segno, effective ring). Non-null only
  // when the fast path may vouch for the reference: fast path enabled,
  // SDW cache enabled, entry present with the current flush epoch.
  const VerdictCache::Entry* FastVerdict(Segno segno, Ring ring) {
    if (!fast_path_enabled_ || !sdw_cache_.enabled()) {
      return nullptr;
    }
    return verdict_cache_.Lookup(segno, ring, sdw_cache_.flush_epoch());
  }
  // Memoizes verdicts after a successful slow-path FetchSdw (which left
  // the descriptor resident in the SDW cache).
  void FillVerdict(Segno segno, Ring ring, const Sdw& sdw) {
    if (!fast_path_enabled_ || !sdw_cache_.enabled()) {
      return;
    }
    ++counters_.verdict_misses;
    verdict_cache_.Fill(segno, ring, sdw_cache_.flush_epoch(), sdw);
  }
  // ResolveOrFault against a verdict entry instead of an SDW; identical
  // charges, counters and missing-page behavior.
  bool FastResolve(const VerdictCache::Entry& v, Segno segno, Wordno wordno, AbsAddr* out);
  // Whether the TLB may be consulted: same gating as the verdict cache,
  // so the ablation benchmarks (SDW cache off) measure what they claim.
  bool TlbEnabled() const { return fast_path_enabled_ && sdw_cache_.enabled(); }
  // Post-store bookkeeping shared by the guest and supervisor write
  // paths: invalidates cached decodes when the target is executable, and
  // snoops stores that land inside the descriptor segment (an SDW edit
  // the processor may have cached).
  void NoteStore(AbsAddr addr, bool target_executable, Segno segno);

  // CALL / RETURN (Figures 8 and 9).
  void ExecuteCall();
  void ExecuteReturn();
  // Transfer instructions other than CALL/RETURN (Figure 7).
  void ExecuteTransfer();

  // Raises a trap with the state captured at instruction fetch (the
  // disrupted instruction can be resumed).
  void RaiseTrap(TrapCause cause, int64_t code = 0);
  // Raises a service trap whose saved IPR addresses the next instruction.
  void RaiseServiceTrap(TrapCause cause, int64_t code);

  // The effective validation ring under the current protection mode: ring
  // hardware validates against the given ring; the 645 base has no ring
  // fields, so everything validates as ring 0 (flags only).
  Ring EffectiveRing(Ring ring) const {
    return mode_ == ProtectionMode::kRingHardware ? ring : 0;
  }

  PhysicalMemory* memory_;
  CycleModel cycle_model_;
  ProtectionMode mode_ = ProtectionMode::kRingHardware;
  bool checks_enabled_ = true;

  RegisterFile regs_;
  Tpr tpr_{};
  Instruction current_ins_{};
  RegisterFile state_at_fetch_{};

  bool trap_pending_ = false;
  TrapState trap_state_{};
  SegAddr pending_fault_addr_{};

  bool timer_enabled_ = false;
  int64_t timer_ = 0;

  SdwCache sdw_cache_;
  bool fast_path_enabled_ = true;
  VerdictCache verdict_cache_;
  InsnCache insn_cache_;
  Tlb tlb_;
  FaultInjector* fault_injector_ = nullptr;
  uint64_t cycles_ = 0;
  Counters counters_;
  EventTrace* trace_ = nullptr;
  std::function<void(uint8_t, Word)> sio_handler_;
};

}  // namespace rings

#endif  // SRC_CPU_CPU_H_

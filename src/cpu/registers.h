// Processor registers (Figure 3): the instruction pointer register (IPR)
// carrying the current ring of execution, the program-accessible pointer
// registers PR0..PR7 each carrying a ring number, index registers, the
// accumulator pair, the descriptor base register, and the internal
// temporary pointer register (TPR) used to form the effective address of
// every reference.
#ifndef SRC_CPU_REGISTERS_H_
#define SRC_CPU_REGISTERS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/core/ring.h"
#include "src/mem/descriptor_segment.h"
#include "src/mem/word.h"

namespace rings {

inline constexpr unsigned kNumPointerRegisters = 8;
inline constexpr unsigned kNumIndexRegisters = 8;

// Software conventions for pointer-register roles. PR0 is loaded by the
// CALL instruction with the new stack base ("CALL generates in PR0 a
// pointer to word 0 of the stack segment for the new ring of execution");
// PR7 is loaded by CALL with the return point (see DESIGN.md — an
// extension consistent with the paper's PR-ring security argument). PR1 is
// the argument pointer "PRa" of the Call and Return Revisited section and
// PR6 the stack pointer, both by software convention.
inline constexpr uint8_t kPrStackBase = 0;  // "sb"
inline constexpr uint8_t kPrArgs = 1;       // "ap" / the paper's PRa
inline constexpr uint8_t kPrStack = 6;      // "sp"
inline constexpr uint8_t kPrReturn = 7;     // "rp"

struct PointerRegister {
  Ring ring = 0;
  Segno segno = 0;
  Wordno wordno = 0;

  bool operator==(const PointerRegister&) const = default;
  std::string ToString() const;
};

// The IPR has the same shape as a pointer register: ring of execution plus
// the two-part address of the next instruction.
using Ipr = PointerRegister;
// The TPR is internal and not program accessible; its ring field is the
// effective (validation) ring of the current operand reference.
using Tpr = PointerRegister;

struct RegisterFile {
  Word a = 0;
  Word q = 0;
  std::array<uint32_t, kNumIndexRegisters> x{};  // 18-bit index registers
  std::array<PointerRegister, kNumPointerRegisters> pr{};
  Ipr ipr{};
  DbrValue dbr{};

  bool operator==(const RegisterFile&) const = default;
  std::string ToString() const;
};

}  // namespace rings

#endif  // SRC_CPU_REGISTERS_H_

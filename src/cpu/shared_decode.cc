#include "src/cpu/shared_decode.h"

#include <utility>

namespace rings {

SharedDecodeImage::Builder::Builder()
    : image_(std::unique_ptr<SharedDecodeImage>(new SharedDecodeImage())) {}

void SharedDecodeImage::Builder::AddSegment(const std::string& name,
                                            const std::vector<Word>& words) {
  Segment seg;
  seg.name = name;
  seg.words.reserve(words.size());
  for (const Word word : words) {
    Entry e;
    e.raw = word;
    e.decodable = DecodeInstruction(word, &e.ins);
    seg.words.push_back(e);
  }
  image_->segments_.push_back(std::move(seg));
}

std::shared_ptr<const SharedDecodeImage> SharedDecodeImage::Builder::Publish(uint64_t identity) {
  image_->identity_ = identity;
  return std::shared_ptr<const SharedDecodeImage>(std::move(image_));
}

const SharedDecodeImage::Segment* SharedDecodeImage::FindSegment(const std::string& name) const {
  for (const Segment& seg : segments_) {
    if (seg.name == name) {
      return &seg;
    }
  }
  return nullptr;
}

size_t SharedDecodeImage::bytes() const {
  size_t total = sizeof(*this);
  for (const Segment& seg : segments_) {
    total += sizeof(Segment) + seg.name.size() + seg.words.size() * sizeof(Entry);
  }
  return total;
}

SharedDecodeRegistry& SharedDecodeRegistry::Instance() {
  static SharedDecodeRegistry* registry = new SharedDecodeRegistry();
  return *registry;
}

std::shared_ptr<const SharedDecodeImage> SharedDecodeRegistry::Acquire(
    uint64_t identity,
    const std::function<std::shared_ptr<const SharedDecodeImage>()>& build, bool* built) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = images_.find(identity); it != images_.end()) {
    if (auto live = it->second.lock()) {
      if (built != nullptr) {
        *built = false;
      }
      if (pin_count_ > 0) {
        pinned_.push_back(live);
      }
      return live;
    }
  }
  std::shared_ptr<const SharedDecodeImage> image = build();
  images_[identity] = image;
  if (built != nullptr) {
    *built = true;
  }
  if (pin_count_ > 0) {
    pinned_.push_back(image);
  }
  return image;
}

SharedDecodeRegistry::Pin::Pin() {
  SharedDecodeRegistry& registry = Instance();
  std::lock_guard<std::mutex> lock(registry.mu_);
  ++registry.pin_count_;
}

SharedDecodeRegistry::Pin::~Pin() {
  SharedDecodeRegistry& registry = Instance();
  std::lock_guard<std::mutex> lock(registry.mu_);
  if (--registry.pin_count_ == 0) {
    registry.pinned_.clear();
  }
}

size_t SharedDecodeRegistry::LiveImages() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (auto it = images_.begin(); it != images_.end();) {
    if (it->second.expired()) {
      it = images_.erase(it);
    } else {
      ++live;
      ++it;
    }
  }
  return live;
}

}  // namespace rings

// Decoded-instruction cache: skips SDW lookup, validation, bounds, address
// resolution, the core-store read and the decode when a hot loop re-fetches
// an instruction it already executed. Entries are keyed by (segno, wordno)
// plus a generation number; Flush() is a generation bump, so wholesale
// invalidation (DBR reload, raw pokes into memory) is O(1).
//
// An entry is revalidated by the verdict cache (which proves the SDW is
// unchanged) plus an absolute-address comparison against the address the
// slow path would compute — the verdict's base plus wordno for unpaged
// segments, the TLB's current frame for paged ones — so a remapped or
// edited descriptor, or a moved page, can never revalidate a stale
// instruction. A paged fetch with no TLB translation takes the slow path;
// either way the per-reference page-table walk's cycle charge and
// missing-page behavior stay exactly as the paper requires. Stores into
// executable segments invalidate by segment number.
#ifndef SRC_CPU_INSN_CACHE_H_
#define SRC_CPU_INSN_CACHE_H_

#include <array>
#include <cstdint>

#include "src/isa/instruction.h"
#include "src/mem/word.h"

namespace rings {

class InsnCache {
 public:
  static constexpr size_t kEntries = 512;

  struct Entry {
    uint64_t gen = 0;  // valid iff equal to the cache's current generation
    Segno segno = 0;
    Wordno wordno = 0;
    AbsAddr addr = 0;  // absolute address the word was fetched from
    Instruction ins{};
  };

  // Pure probe; the caller must additionally verify `addr` against the
  // current verdict before trusting the entry.
  const Entry* Lookup(Segno segno, Wordno wordno) const {
    const Entry& e = entries_[Index(segno, wordno)];
    if (e.gen == gen_ && e.segno == segno && e.wordno == wordno) {
      return &e;
    }
    return nullptr;
  }

  void Put(Segno segno, Wordno wordno, AbsAddr addr, const Instruction& ins) {
    entries_[Index(segno, wordno)] = Entry{gen_, segno, wordno, addr, ins};
  }

  // A store landed in an executable segment, or its SDW was edited.
  void InvalidateSegment(Segno segno);

  void Flush() { ++gen_; }

 private:
  static size_t Index(Segno segno, Wordno wordno) {
    return (wordno ^ (static_cast<uint32_t>(segno) * 0x9E3779B1u)) & (kEntries - 1);
  }

  uint64_t gen_ = 1;  // entries zero-initialize to gen 0 == invalid
  std::array<Entry, kEntries> entries_{};
};

}  // namespace rings

#endif  // SRC_CPU_INSN_CACHE_H_

// Superblock cache: the host-side memo of straight-line decoded runs. The
// PR-3 fast path made each simulated instruction cheap; this cache makes
// the *dispatch between* instructions cheap by chaining already-decoded
// InsnCache entries into blocks that a single Cpu::StepBlock call executes
// straight through, paying the fetch-probe and address revalidation once
// per block instead of once per instruction.
//
// A block is a host artifact with no architectural footprint: every op
// charges exactly the cycles and counters of the per-instruction path
// taken with a verdict hit, the per-instruction boundary work (timer,
// fault-injection hooks, trap capture state) runs before every op, and
// any event that could make the recorded run diverge from what the
// per-instruction path would do bails the remaining ops back to that
// path. Correctness rests on the dispatch-time validation (the block's
// segment has a current verdict with matching base/paging/ring/bound) and
// on a monotonically increasing `version` that every invalidation bumps:
// the inner loop re-reads it before each op, so a mid-block SDW eviction,
// fault-injected cache drop, or store into code retires the rest of the
// block. Paged blocks additionally revalidate each op's fetch address
// through the live TLB, so a moved or snooped translation can never
// replay a stale decode.
#ifndef SRC_CPU_BLOCK_CACHE_H_
#define SRC_CPU_BLOCK_CACHE_H_

#include <array>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <type_traits>

#include "src/core/ring.h"
#include "src/isa/instruction.h"
#include "src/mem/word.h"

namespace rings {

class BlockCache {
 public:
  static constexpr size_t kEntries = 256;  // direct-mapped by (segno, start)
  static constexpr size_t kMaxOps = 32;
  // Sentinel for Block::link_slot: no successor patched in.
  static constexpr uint16_t kNoLink = 0xFFFF;

  struct Op {
    Instruction ins{};
    Wordno wordno = 0;
    AbsAddr addr = 0;  // absolute fetch address the decode was filled from
    bool needs_ea = false;
  };

  struct Block {
    uint64_t gen = 0;  // valid iff equal to the cache's current generation
    Segno segno = 0;
    Wordno start = 0;
    uint16_t count = 0;
    Ring ring = 0;        // IPR.RING the block was built under
    bool checks = false;  // checks_enabled() at build time
    bool paged = false;   // the verdict's paging shape at build time
    AbsAddr base = 0;     // the verdict's base (page-table base if paged)
    // Direct chaining (see DESIGN.md §7): the slot of the successor block
    // this one last transferred into, stamped with the cache version at
    // patch time. A link is only followed when link_version equals the
    // current version — every invalidation site bumps the version (or the
    // generation, which retires the target outright), so a stale link can
    // never be followed; it is simply dead until repatched. The builder
    // resets the link when a slot is repurposed.
    uint16_t link_slot = kNoLink;
    uint64_t link_version = 0;
    // Whether the terminator op may chain into a successor at all
    // (Cpu::ChainEligible, precomputed at build time so the chain point
    // tests one flag instead of re-deriving it per transition).
    bool chain_ok = false;
    // Host shortcut: the fixed simulated-cycle charge every op in this
    // block pays before execution (instruction base + fetch check under
    // this block's checks regime + page walk if paged + the fetch read),
    // folded into one add at build time. Identical to the sum the
    // per-instruction path charges piecewise.
    uint64_t op_charge = 0;
    std::array<Op, kMaxOps> ops{};
  };

  const Block* Lookup(Segno segno, Wordno start) const {
    if (blocks_ == nullptr) {
      return nullptr;
    }
    const Block& b = blocks_[Index(segno, start)];
    if (b.gen == gen_ && b.segno == segno && b.start == start) {
      return &b;
    }
    return nullptr;
  }

  // Mutable lookup for the chaining engine (links are patched into live
  // blocks); same validity test as Lookup.
  Block* LookupMutable(Segno segno, Wordno start) {
    if (blocks_ == nullptr) {
      return nullptr;
    }
    Block& b = blocks_[Index(segno, start)];
    if (b.gen == gen_ && b.segno == segno && b.start == start) {
      return &b;
    }
    return nullptr;
  }

  // Link-follow accessors: a patched link names a slot, not a pointer, so
  // the follower re-reads the slot and revalidates what it holds now.
  // Links are only ever patched into built blocks, so a followed link
  // implies the backing store exists.
  Block* BlockAt(uint16_t slot) { return &blocks_[slot % kEntries]; }
  uint16_t SlotIndexOf(const Block* block) const {
    return static_cast<uint16_t>(block - blocks_.get());
  }

  // The slot a block starting at (segno, start) builds into; the builder
  // fills it in place and stamps `gen` with generation() to publish it.
  // First build allocates the backing store (see blocks_ below).
  Block* SlotFor(Segno segno, Wordno start) {
    if (blocks_ == nullptr) {
      blocks_.reset(static_cast<Block*>(std::calloc(kEntries, sizeof(Block))));
    }
    return &blocks_[Index(segno, start)];
  }

  // Retires every block built from `segno` (its SDW was edited, dropped,
  // or a store landed in its code). Returns blocks dropped; always bumps
  // the version so an in-flight block bails.
  size_t InvalidateSegment(Segno segno);

  // O(1) whole-cache invalidation (generation bump); wired to every event
  // that retires the verdict regime wholesale (DBR reloads, SDW-cache
  // flushes, behind-the-back stores, engine/fast-path toggles).
  void Flush() {
    ++gen_;
    ++version_;
  }

  // Signals that derived state changed under a possibly-running block
  // without retiring any stored block (e.g. an SDW-cache insert evicting
  // whatever a slot held); the inner loop bails and revalidates.
  void BumpVersion() { ++version_; }
  uint64_t version() const { return version_; }
  uint64_t generation() const { return gen_; }

 private:
  static size_t Index(Segno segno, Wordno start) {
    return (start ^ (static_cast<uint32_t>(segno) * 0x9E3779B1u)) & (kEntries - 1);
  }

  uint64_t gen_ = 1;  // blocks zero-initialize to gen 0 == invalid
  uint64_t version_ = 0;
  // The backing store is calloc'd on first build, not an inline array:
  // 256 blocks of 32 decoded ops each are ~270 KiB, and paying for that
  // at construction (whether as inline zero-fill or as an eager mmap-class
  // allocation) dominated Machine construction — which a fleet daemon pays
  // per spawned clone. A null store reads as an empty cache; the first
  // SlotFor call allocates, and calloc's zero bytes are a valid empty
  // state because gen 0 == invalid. Block is an implicit-lifetime
  // aggregate, so the calloc'd array is usable without placement-new.
  static_assert(std::is_trivially_destructible_v<Block>);
  static_assert(std::is_trivially_copyable_v<Block>);
  struct FreeDeleter {
    void operator()(Block* p) const { std::free(p); }
  };
  std::unique_ptr<Block[], FreeDeleter> blocks_;
};

}  // namespace rings

#endif  // SRC_CPU_BLOCK_CACHE_H_

#include "src/cpu/insn_cache.h"

namespace rings {

void InsnCache::InvalidateSegment(Segno segno) {
  for (Entry& e : entries_) {
    if (e.gen == gen_ && e.segno == segno) {
      e.gen = 0;
    }
  }
}

}  // namespace rings

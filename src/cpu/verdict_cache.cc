#include "src/cpu/verdict_cache.h"

#include "src/core/access.h"

namespace rings {

void VerdictCache::Fill(Segno segno, Ring ring, uint64_t epoch, const Sdw& sdw) {
  Entry& e = entries_[segno % kEntries];
  e.valid = true;
  e.segno = segno;
  e.ring = ring;
  e.epoch = epoch;
  e.read_ok = CheckRead(sdw.access, ring).ok();
  e.write_ok = CheckWrite(sdw.access, ring).ok();
  e.execute_ok = CheckExecute(sdw.access, ring).ok();
  e.indirect_ok = CheckIndirectRead(sdw.access, ring).ok();
  e.base = sdw.base;
  e.bound = sdw.bound;
  e.paged = sdw.paged;
  e.flags_execute = sdw.access.flags.execute;
  e.r1 = sdw.access.brackets.r1;
}

void VerdictCache::Flush() {
  for (Entry& e : entries_) {
    e.valid = false;
  }
}

}  // namespace rings

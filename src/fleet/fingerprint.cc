#include "src/fleet/fingerprint.h"

#include "src/base/strings.h"

namespace rings {

namespace {

void MixPointerRegister(FingerprintBuilder* fp, const PointerRegister& pr) {
  fp->Mix(static_cast<uint64_t>(pr.ring));
  fp->Mix(static_cast<uint64_t>(pr.segno));
  fp->Mix(static_cast<uint64_t>(pr.wordno));
}

void MixRegisters(FingerprintBuilder* fp, const RegisterFile& regs) {
  fp->Mix(regs.a);
  fp->Mix(regs.q);
  for (const uint32_t x : regs.x) {
    fp->Mix(static_cast<uint64_t>(x));
  }
  for (const PointerRegister& pr : regs.pr) {
    MixPointerRegister(fp, pr);
  }
  MixPointerRegister(fp, regs.ipr);
  fp->Mix(static_cast<uint64_t>(regs.dbr.base));
  fp->Mix(static_cast<uint64_t>(regs.dbr.bound));
  fp->Mix(static_cast<uint64_t>(regs.dbr.stack_base));
}

void MixCounters(FingerprintBuilder* fp, const Counters& counters) {
  Counters::ForEachField(
      [fp, &counters](const char*, uint64_t Counters::* member, bool host_only) {
        if (!host_only) {
          fp->Mix(counters.*member);
        }
      });
  for (const uint64_t n : counters.traps) {
    fp->Mix(n);
  }
}

}  // namespace

std::string ProcessStatusLine(const Process& process) {
  switch (process.state) {
    case ProcessState::kExited:
      return StrFormat("pid=%d user=%s state=exited code=%lld", process.pid,
                       process.user.c_str(), static_cast<long long>(process.exit_code));
    case ProcessState::kKilled:
      return StrFormat("pid=%d user=%s state=killed cause=%s at %u|%u", process.pid,
                       process.user.c_str(),
                       std::string(TrapCauseName(process.kill_cause)).c_str(),
                       process.kill_pc.segno, process.kill_pc.wordno);
    default:
      return StrFormat("pid=%d user=%s state=%d", process.pid, process.user.c_str(),
                       static_cast<int>(process.state));
  }
}

uint64_t FingerprintCounters(const Counters& counters) {
  FingerprintBuilder fp;
  MixCounters(&fp, counters);
  return fp.digest();
}

uint64_t FingerprintMachine(const Machine& machine) {
  FingerprintBuilder fp;
  fp.Mix(machine.cpu().cycles());
  MixRegisters(&fp, machine.cpu().regs());
  MixCounters(&fp, machine.cpu().counters());
  if (machine.trace().enabled()) {
    for (const TraceEvent& e : machine.trace().events()) {
      if (e.kind == EventKind::kTrap || e.kind == EventKind::kRingSwitch) {
        fp.Mix(e.ToString());
      }
    }
  }
  for (const auto& process : machine.supervisor().processes()) {
    fp.Mix(ProcessStatusLine(*process));
  }
  fp.Mix(machine.TtyOutput());
  return fp.digest();
}

}  // namespace rings

#include "src/fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/cpu/shared_decode.h"
#include "src/fleet/fingerprint.h"
#include "src/fleet/golden_image.h"
#include "src/snapshot/snapshot.h"

namespace rings {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
}

}  // namespace

std::string_view MachineOutcomeName(MachineOutcome outcome) {
  switch (outcome) {
    case MachineOutcome::kCompleted:
      return "completed";
    case MachineOutcome::kFailed:
      return "FAILED";
    case MachineOutcome::kBudgetExhausted:
      return "budget-exhausted";
  }
  return "?";
}

std::string MachineResult::ToString() const {
  std::string out = StrFormat(
      "machine %zu '%s': %s exit=%d cycles=%llu instructions=%llu fingerprint=%016llx "
      "quanta=%llu",
      index, name.c_str(), std::string(MachineOutcomeName(outcome)).c_str(), exit_code,
      static_cast<unsigned long long>(cycles), static_cast<unsigned long long>(instructions),
      static_cast<unsigned long long>(fingerprint), static_cast<unsigned long long>(quanta));
  if (restarts > 0) {
    out += StrFormat(" restarts=%d%s", restarts, recovered ? " (recovered)" : "");
  }
  if (!failure.empty()) {
    out += StrFormat(" (%s)", failure.c_str());
  }
  return out;
}

std::string FleetStats::ToString() const {
  std::string out = StrFormat(
      "fleet: %zu machine(s): %zu completed, %zu failed, %zu budget-exhausted | "
      "sim instructions=%llu cycles=%llu | host %.3fs, %.2fM sim-insn/s",
      machines, completed, failed, budget_exhausted,
      static_cast<unsigned long long>(total_instructions),
      static_cast<unsigned long long>(total_cycles), wall_seconds,
      instructions_per_second / 1e6);
  if (restarts > 0) {
    out += StrFormat("\n  self-healing: %zu restart(s), %zu machine(s) recovered", restarts,
                     recovered);
  }
  for (size_t w = 0; w < workers.size(); ++w) {
    const double utilization =
        wall_seconds > 0 ? 100.0 * workers[w].busy_seconds / wall_seconds : 0.0;
    out += StrFormat("\n  thread %zu: %5.1f%% busy, %llu quanta (%llu stolen)", w, utilization,
                     static_cast<unsigned long long>(workers[w].quanta),
                     static_cast<unsigned long long>(workers[w].steals));
  }
  return out;
}

Fleet::Fleet(FleetConfig config) : config_(config) {
  if (config_.threads < 1) {
    config_.threads = 1;
  }
  if (config_.slice_cycles == 0) {
    config_.slice_cycles = 1;
  }
}

size_t Fleet::Add(FleetJob job) {
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

void Fleet::Retire(size_t index, MachineOutcome outcome, std::string host_failure) {
  Slot& slot = slots_[index];
  MachineResult& result = results_[index];
  result.index = index;
  result.name = jobs_[index].name;
  result.outcome = outcome;
  result.failure = std::move(host_failure);
  result.quanta = slot.quanta;
  result.restarts = slot.restarts;
  if (slot.machine != nullptr) {
    const Machine& machine = *slot.machine;
    result.fingerprint = FingerprintMachine(machine);
    result.cycles = machine.cpu().cycles();
    result.instructions = machine.cpu().counters().instructions;
    result.counters = machine.cpu().counters();
    result.tty = machine.TtyOutput();
    int exit_code = 0;
    for (const auto& process : machine.supervisor().processes()) {
      result.process_status.push_back(ProcessStatusLine(*process));
      if (process->state == ProcessState::kExited) {
        exit_code = std::max(exit_code, static_cast<int>(process->exit_code & 0xFF));
      } else {
        exit_code = 111;
        if (result.outcome == MachineOutcome::kCompleted) {
          result.outcome = MachineOutcome::kFailed;
        }
        if (result.failure.empty()) {
          result.failure = result.process_status.back();
        }
      }
    }
    result.exit_code = exit_code;
  } else if (result.exit_code == 0) {
    result.exit_code = 111;
  }
  if (result.outcome == MachineOutcome::kBudgetExhausted && result.exit_code == 0) {
    result.exit_code = 111;
  }
  result.recovered = result.restarts > 0 && result.outcome == MachineOutcome::kCompleted;
  slot.machine.reset();  // bound peak memory: one retired fleet member at a time
}

void Fleet::MaybeCheckpoint(size_t index) {
  Slot& slot = slots_[index];
  std::vector<uint8_t> image;
  std::string error;
  // The machine's own injector is the write injector: a kSnapshotWrite
  // fault damages the image in flight, the verification pass below
  // rejects it, and the slot keeps its previous good checkpoint.
  if (!SaveSnapshot(*slot.machine, &image, &error, slot.machine->fault_injector())) {
    RINGS_LOG(kWarning) << "fleet machine " << index << ": checkpoint save failed: " << error;
    return;
  }
  if (!VerifySnapshot(image, &error)) {
    RINGS_LOG(kWarning) << "fleet machine " << index
                        << ": checkpoint failed verification, keeping previous: " << error;
    return;
  }
  slot.checkpoint = std::move(image);
  slot.checkpoint_cycles = slot.consumed_cycles;
}

bool Fleet::TryRestart(size_t index, const std::string& why) {
  Slot& slot = slots_[index];
  if (slot.restarts >= config_.max_restarts || slot.checkpoint.empty()) {
    return false;
  }
  const FleetJob& job = jobs_[index];
  std::unique_ptr<Machine> fresh = job.factory != nullptr ? job.factory() : nullptr;
  if (fresh == nullptr || !fresh->ok()) {
    return false;
  }
  std::string error;
  if (!RestoreSnapshot(slot.checkpoint, fresh.get(), &error)) {
    RINGS_LOG(kWarning) << "fleet machine " << index << ": checkpoint restore failed: " << error;
    return false;
  }
  // The fault that brought the machine down was a transient injected one;
  // the restarted machine runs on repaired hardware. (Re-arming the
  // injector would deterministically replay the same fatal fault.)
  if (fresh->fault_injector() != nullptr) {
    fresh->fault_injector()->Disarm();
  }
  slot.machine = std::move(fresh);
  slot.consumed_cycles = slot.checkpoint_cycles;
  ++slot.restarts;
  RINGS_LOG(kInfo) << "fleet machine " << index << ": restarted from checkpoint (attempt "
                   << slot.restarts << "): " << why;
  return true;
}

bool Fleet::RunQuantum(size_t index) {
  Slot& slot = slots_[index];
  const FleetJob& job = jobs_[index];
#if defined(__cpp_exceptions)
  try {
#endif
    if (slot.machine == nullptr) {
      ++slot.quanta;
      slot.machine = job.factory != nullptr ? job.factory() : nullptr;
      if (slot.machine == nullptr || !slot.machine->ok()) {
        slot.machine.reset();
        Retire(index, MachineOutcome::kFailed, "machine construction failed");
        return true;
      }
      if (config_.checkpoint_every_quanta > 0) {
        MaybeCheckpoint(index);  // baseline image: loaded, nothing run yet
      }
      return false;  // construction was this quantum's work
    }
    const uint64_t remaining = job.max_cycles - slot.consumed_cycles;
    const RunResult run = slot.machine->Run(std::min(config_.slice_cycles, remaining));
    ++slot.quanta;
    slot.consumed_cycles += run.cycles;
    if (run.idle) {
      bool clean = true;
      for (const auto& process : slot.machine->supervisor().processes()) {
        if (process->state != ProcessState::kExited) {
          clean = false;
          break;
        }
      }
      if (!clean && TryRestart(index, "machine went down with a non-exited process")) {
        return false;
      }
      Retire(index, MachineOutcome::kCompleted, "");
      return true;
    }
    if (slot.consumed_cycles >= job.max_cycles) {
      Retire(index, MachineOutcome::kBudgetExhausted, "cycle budget exhausted");
      return true;
    }
    if (config_.checkpoint_every_quanta > 0 &&
        slot.quanta % config_.checkpoint_every_quanta == 0) {
      MaybeCheckpoint(index);
    }
    return false;
#if defined(__cpp_exceptions)
  } catch (const std::exception& e) {
    // Host-side failure isolation: this machine retires, siblings drain.
    const std::string what = StrFormat("host exception: %s", e.what());
    slot.machine.reset();
    if (TryRestart(index, what)) {
      return false;
    }
    Retire(index, MachineOutcome::kFailed, what);
    return true;
  }
#endif
}

std::optional<size_t> Fleet::Dequeue(size_t worker) {
  Worker& own = *workers_[worker];
  {
    const std::lock_guard<std::mutex> lock(own.mu);
    if (!own.queue.empty()) {
      const size_t index = own.queue.back();
      own.queue.pop_back();
      return index;
    }
  }
  // Steal from the front of a sibling's queue (the machine its owner
  // would touch last), scanning from the next worker around the ring.
  for (size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(worker + k) % workers_.size()];
    const std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.queue.empty()) {
      const size_t index = victim.queue.front();
      victim.queue.pop_front();
      ++own.stats.steals;
      return index;
    }
  }
  return std::nullopt;
}

void Fleet::WorkerLoop(size_t worker) {
  Worker& own = *workers_[worker];
  while (live_.load(std::memory_order_acquire) > 0) {
    const std::optional<size_t> index = Dequeue(worker);
    if (!index.has_value()) {
      // Every live machine is in some worker's hands; nothing to do but
      // let them finish (or requeue, when their quantum ends).
      std::this_thread::yield();
      continue;
    }
    const Clock::time_point start = Clock::now();
    const bool retired = RunQuantum(*index);
    own.stats.busy_seconds += Seconds(Clock::now() - start);
    ++own.stats.quanta;
    if (retired) {
      live_.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      const std::lock_guard<std::mutex> lock(own.mu);
      own.queue.push_back(*index);
    }
  }
}

FleetStats Fleet::Run() {
  const size_t n = jobs_.size();
  results_.assign(n, MachineResult{});
  slots_.clear();
  slots_.resize(n);
  const size_t threads = static_cast<size_t>(config_.threads);
  workers_.clear();
  for (size_t w = 0; w < threads; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Initial distribution: round-robin, so every worker starts with work
  // and stealing only happens once queues drain unevenly.
  for (size_t i = 0; i < n; ++i) {
    workers_[i % threads]->queue.push_back(i);
  }
  live_.store(n, std::memory_order_release);

  // Keep every shared decode image and golden machine image acquired
  // during this run alive until the run ends: machines are retired one at
  // a time to bound memory, so without the pins a program's image would
  // expire with its last live machine and the next wave would rebuild
  // (or re-boot) it.
  const SharedDecodeRegistry::Pin decode_pin;
  const GoldenImageRegistry::Pin golden_pin;

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    pool.emplace_back([this, w] { WorkerLoop(w); });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  const double wall = Seconds(Clock::now() - start);

  FleetStats stats;
  stats.machines = n;
  stats.wall_seconds = wall;
  for (const MachineResult& result : results_) {
    switch (result.outcome) {
      case MachineOutcome::kCompleted:
        ++stats.completed;
        break;
      case MachineOutcome::kFailed:
        ++stats.failed;
        break;
      case MachineOutcome::kBudgetExhausted:
        ++stats.budget_exhausted;
        break;
    }
    stats.total_instructions += result.instructions;
    stats.total_cycles += result.cycles;
    stats.restarts += static_cast<size_t>(result.restarts);
    if (result.recovered) {
      ++stats.recovered;
    }
    stats.aggregate.Accumulate(result.counters);
  }
  stats.instructions_per_second =
      wall > 0 ? static_cast<double>(stats.total_instructions) / wall : 0.0;
  for (const auto& worker : workers_) {
    stats.workers.push_back(worker->stats);
  }
  return stats;
}

int Fleet::ExitCode() const {
  int exit_code = 0;
  for (const MachineResult& result : results_) {
    exit_code = std::max(exit_code, result.exit_code);
  }
  return exit_code;
}

}  // namespace rings

// Golden machine images: one booted+loaded Machine per distinct program,
// sealed and never run, from which every fleet member (and every serving-
// daemon tenant machine, src/serve) is spawned by copy-on-write clone
// instead of construct+load. Construction of a ring machine is dominated
// by supervisor initialization plus program assembly/registration — work
// that is identical for every machine running the same program. A
// GoldenImage pays it once; Spawn() is then Machine::CloneFrom, which
// costs O(registers + frame table) (see src/mem/physical_memory.h).
//
// The registry mirrors SharedDecodeRegistry (src/cpu/shared_decode.h):
// keyed by program-image identity, weak references by default (a golden
// image dies with its last user), with a Pin RAII scope that retains
// every image handed out while any Pin is alive — the same lifetime fix
// the decode registry needed, for the same reason (fleets retire members
// one at a time, so per-machine lifetime alone would let the image expire
// mid-run and force a re-boot per spawn).
#ifndef SRC_FLEET_GOLDEN_IMAGE_H_
#define SRC_FLEET_GOLDEN_IMAGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/sys/machine.h"

namespace rings {

// A sealed, never-run machine to clone from. The wrapped machine is
// frozen at construction (its memory frames are sealed for cloning under
// the registry lock), so concurrent Spawn() calls from fleet worker
// threads only ever read it.
class GoldenImage {
 public:
  // Wraps a freshly booted+loaded machine. `machine` must be ok() and
  // must never run afterwards; the image takes ownership.
  GoldenImage(std::unique_ptr<Machine> machine, uint64_t identity);

  // A runnable copy-on-write clone of the golden machine. Thread-safe.
  std::unique_ptr<Machine> Spawn() const { return Machine::CloneFrom(*machine_); }

  uint64_t identity() const { return identity_; }
  const Machine& machine() const { return *machine_; }

 private:
  std::unique_ptr<Machine> machine_;
  uint64_t identity_ = 0;
};

// Process-wide registry of golden images, keyed by program-image identity
// (ProgramIdentity, src/sys/machine.h). Thread-safe: fleet machine
// factories run concurrently on worker threads.
class GoldenImageRegistry {
 public:
  static GoldenImageRegistry& Instance();

  // Returns the golden image for `identity`, building it with `build`
  // under the registry lock when no live image exists. `build` returns
  // the booted+loaded machine to seal (null on boot/load failure, in
  // which case Acquire returns null). `built` (optional) reports whether
  // this call did the boot+load — the evidence that an N-machine fleet
  // boots each program once.
  std::shared_ptr<const GoldenImage> Acquire(
      uint64_t identity, const std::function<std::unique_ptr<Machine>()>& build,
      bool* built = nullptr);

  // Live (still-referenced) images; purges expired slots. For tests.
  size_t LiveImages();

  // RAII retention scope, same contract as SharedDecodeRegistry::Pin:
  // while any Pin is alive the registry keeps a strong reference to every
  // image Acquire hands out; the last Pin's release drops them.
  class Pin {
   public:
    Pin();
    ~Pin();
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
  };

 private:
  std::mutex mu_;
  std::unordered_map<uint64_t, std::weak_ptr<const GoldenImage>> images_;
  size_t pin_count_ = 0;
  std::vector<std::shared_ptr<const GoldenImage>> pinned_;
};

}  // namespace rings

#endif  // SRC_FLEET_GOLDEN_IMAGE_H_

// The fleet engine: run N independent Machine instances across a pool of
// host worker threads. Each machine owns its memory, supervisor, caches,
// and (optionally) a seeded fault injector, so machines share no mutable
// state; the engine schedules them as a work-stealing queue of
// per-machine quanta — a quantum is Machine::Run over a fixed
// simulated-cycle slice — and retires each machine with a structured
// MachineResult when it goes idle, fails, or exhausts its budget.
//
// Determinism is the contract, not an aspiration: a machine's final
// fingerprint, counters, and trap sequence are bit-identical whether the
// fleet runs on 1, 4, or 8 threads or the machine runs standalone
// through Machine::Run (pinned by tests/fleet/). It holds by
// construction — a machine's quantum sequence depends only on its own
// consumed cycles, never on which worker ran it or what its siblings
// did — and required every process-wide mutable singleton to be
// thread-safe (src/base/log.{h,cc}) or per-machine (everything else).
//
// Failure isolation is per machine: one machine latching kMachineFault,
// trap-storming into the watchdog, or throwing on the host is retired as
// kFailed while the rest of the fleet keeps draining.
#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sys/machine.h"
#include "src/trace/counters.h"

namespace rings {

struct FleetConfig {
  // Host worker threads. Values below 1 are treated as 1; threads beyond
  // the number of live machines just find the queues empty.
  int threads = 1;
  // Simulated-cycle budget of one scheduling quantum. Smaller slices
  // interleave machines more finely (and bound how long a worker is
  // stuck behind one machine); the value never affects any machine's
  // final state, only host scheduling granularity.
  uint64_t slice_cycles = 250'000;
  // Crash-consistent checkpointing: every N quanta a machine's state is
  // serialized (src/snapshot) and verified; the last good image is kept
  // in the machine's slot. 0 disables checkpointing.
  uint64_t checkpoint_every_quanta = 0;
  // Self-healing: a machine that fails (killed process, machine fault,
  // trap storm, host exception) is restarted from its last verified
  // checkpoint up to this many times, with its fault injector disarmed
  // (the model: the transient hardware fault was repaired). 0 means
  // failures retire the machine immediately.
  int max_restarts = 0;
};

// One machine's place in the fleet. The factory runs on a worker thread
// at the machine's first quantum (construction and program loading
// parallelize with its siblings), so it must capture everything it needs
// by value and must not touch shared mutable state.
struct FleetJob {
  std::string name;
  std::function<std::unique_ptr<Machine>()> factory;
  // Total simulated-cycle budget across all quanta (the standalone
  // equivalent is Machine::Run(max_cycles)).
  uint64_t max_cycles = 100'000'000;
};

enum class MachineOutcome {
  kCompleted,        // went idle: every process exited cleanly
  kFailed,           // a process was killed, construction failed, or the host threw
  kBudgetExhausted,  // still runnable when max_cycles ran out
};

std::string_view MachineOutcomeName(MachineOutcome outcome);

// The structured result a machine retires with. The machine itself is
// destroyed on retirement (a fleet of large memories would otherwise
// peak at every machine resident at once); everything comparable lives
// here.
struct MachineResult {
  size_t index = 0;
  std::string name;
  MachineOutcome outcome = MachineOutcome::kFailed;
  // Why the machine failed (empty when it completed): the status line of
  // the first killed process, or the host-side error.
  std::string failure;
  // ringsim-style exit status: max exited code (masked to 0..255), 111
  // when any process was killed or never finished.
  int exit_code = 0;

  // Simulated face of the run — bit-identical across thread counts and
  // vs. standalone execution (host-only counters excluded from the
  // fingerprint; see src/fleet/fingerprint.h).
  uint64_t fingerprint = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  Counters counters{};
  std::vector<std::string> process_status;
  std::string tty;

  // Host-side bookkeeping (legitimately varies across runs).
  uint64_t quanta = 0;

  // Self-healing bookkeeping: how many times this machine was restarted
  // from a checkpoint, and whether a restarted machine went on to
  // complete cleanly.
  int restarts = 0;
  bool recovered = false;

  bool ok() const { return outcome == MachineOutcome::kCompleted; }
  std::string ToString() const;
};

// Per-worker host utilization for one Fleet::Run.
struct WorkerStats {
  double busy_seconds = 0;  // time spent inside quanta (incl. construction)
  uint64_t quanta = 0;
  uint64_t steals = 0;  // quanta obtained from another worker's queue
};

struct FleetStats {
  size_t machines = 0;
  size_t completed = 0;
  size_t failed = 0;
  size_t budget_exhausted = 0;
  // Self-healing: total checkpoint restarts across the fleet, and how
  // many machines completed after at least one restart.
  size_t restarts = 0;
  size_t recovered = 0;

  // Aggregate simulated work: per-machine counters merged with
  // Counters::Accumulate. Thread-count invariant.
  uint64_t total_instructions = 0;
  uint64_t total_cycles = 0;
  Counters aggregate{};

  // Host-side throughput (varies by host and thread count).
  double wall_seconds = 0;
  double instructions_per_second = 0;
  std::vector<WorkerStats> workers;

  std::string ToString() const;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config = FleetConfig{});

  // Adds a job; returns its machine index. Invalid while Run is active.
  size_t Add(FleetJob job);
  size_t Add(std::string name, std::function<std::unique_ptr<Machine>()> factory,
             uint64_t max_cycles = 100'000'000) {
    return Add(FleetJob{std::move(name), std::move(factory), max_cycles});
  }

  size_t size() const { return jobs_.size(); }
  const FleetConfig& config() const { return config_; }

  // Runs every machine to retirement and blocks until the fleet drains.
  // Callable once per added batch; results accumulate in order of
  // machine index (not retirement order).
  FleetStats Run();

  const std::vector<MachineResult>& results() const { return results_; }

  // ringsim-style fleet exit status: the max per-machine exit_code, so a
  // nonzero result from any machine fails the whole run.
  int ExitCode() const;

 private:
  // A live (not yet retired) machine and its scheduling state. Touched
  // only by the worker currently holding its index, which is in exactly
  // one queue or one worker's hands at a time.
  struct Slot {
    std::unique_ptr<Machine> machine;
    uint64_t consumed_cycles = 0;
    uint64_t quanta = 0;
    // Last verified checkpoint image (empty when checkpointing is off or
    // no good image exists yet) and the consumed-cycle mark it captures.
    std::vector<uint8_t> checkpoint;
    uint64_t checkpoint_cycles = 0;
    int restarts = 0;
  };

  struct Worker {
    std::mutex mu;
    std::deque<size_t> queue;
    WorkerStats stats;
  };

  // Runs one quantum of machine `index`; returns true when the machine
  // retired (result recorded, machine destroyed).
  bool RunQuantum(size_t index);
  // Serializes and verifies the machine's state into its slot's
  // checkpoint (keeping the previous image if this one fails to verify).
  void MaybeCheckpoint(size_t index);
  // Attempts a restart from the slot's last verified checkpoint; false
  // when restarts are exhausted, no checkpoint exists, or restore fails
  // (the caller retires the machine as it would have without healing).
  bool TryRestart(size_t index, const std::string& why);
  void Retire(size_t index, MachineOutcome outcome, std::string host_failure);
  std::optional<size_t> Dequeue(size_t worker);
  void WorkerLoop(size_t worker);

  FleetConfig config_;
  std::vector<FleetJob> jobs_;
  std::vector<MachineResult> results_;
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<size_t> live_{0};
};

}  // namespace rings

#endif  // SRC_FLEET_FLEET_H_

#include "src/fleet/golden_image.h"

#include <utility>

namespace rings {

GoldenImage::GoldenImage(std::unique_ptr<Machine> machine, uint64_t identity)
    : machine_(std::move(machine)), identity_(identity) {
  // Seal once, up front: every frame becomes alias-only, so concurrent
  // Spawn() calls never observe a write table in motion.
  machine_->memory().SealForCloning();
}

GoldenImageRegistry& GoldenImageRegistry::Instance() {
  static GoldenImageRegistry* registry = new GoldenImageRegistry();
  return *registry;
}

std::shared_ptr<const GoldenImage> GoldenImageRegistry::Acquire(
    uint64_t identity, const std::function<std::unique_ptr<Machine>()>& build, bool* built) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = images_.find(identity); it != images_.end()) {
    if (auto live = it->second.lock()) {
      if (built != nullptr) {
        *built = false;
      }
      if (pin_count_ > 0) {
        pinned_.push_back(live);
      }
      return live;
    }
  }
  std::unique_ptr<Machine> machine = build();
  if (machine == nullptr || !machine->ok()) {
    return nullptr;
  }
  auto image = std::make_shared<const GoldenImage>(std::move(machine), identity);
  images_[identity] = image;
  if (built != nullptr) {
    *built = true;
  }
  if (pin_count_ > 0) {
    pinned_.push_back(image);
  }
  return image;
}

GoldenImageRegistry::Pin::Pin() {
  GoldenImageRegistry& registry = Instance();
  std::lock_guard<std::mutex> lock(registry.mu_);
  ++registry.pin_count_;
}

GoldenImageRegistry::Pin::~Pin() {
  GoldenImageRegistry& registry = Instance();
  std::lock_guard<std::mutex> lock(registry.mu_);
  if (--registry.pin_count_ == 0) {
    registry.pinned_.clear();
  }
}

size_t GoldenImageRegistry::LiveImages() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (auto it = images_.begin(); it != images_.end();) {
    if (it->second.expired()) {
      it = images_.erase(it);
    } else {
      ++live;
      ++it;
    }
  }
  return live;
}

}  // namespace rings

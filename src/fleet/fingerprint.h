// The machine fingerprint: a single 64-bit digest of everything a
// finished run lets the simulated machine observe — the cycle count, the
// architectural registers, every architectural event counter (host-side
// fast-path statistics are excluded, per the Counters::ForEachField
// host_only classification), the trap/ring-switch event sequence, each
// process's outcome, and the typewriter output. Two runs of the same
// program are the same run exactly when their fingerprints match, which
// is the determinism contract the fleet engine is held to: a machine's
// fingerprint must be bit-identical whether it ran standalone through
// Machine::Run or inside a fleet on any number of worker threads.
#ifndef SRC_FLEET_FINGERPRINT_H_
#define SRC_FLEET_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/sys/machine.h"

namespace rings {

// Order-sensitive FNV-1a accumulator. Every Mix() call folds a length
// tag or the raw little-endian bytes in, so field boundaries cannot
// alias ("ab","c" vs "a","bc" hash differently).
class FingerprintBuilder {
 public:
  void Mix(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      MixByte(static_cast<uint8_t>(value >> (8 * i)));
    }
  }
  void Mix(std::string_view text) {
    Mix(static_cast<uint64_t>(text.size()));
    for (const char c : text) {
      MixByte(static_cast<uint8_t>(c));
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  void MixByte(uint8_t byte) {
    hash_ ^= byte;
    hash_ *= 1099511628211ull;
  }
  uint64_t hash_ = 14695981039346656037ull;
};

// Digest of a finished machine. Includes the trap/ring-switch sequence
// only when the machine's trace was enabled for the run (the trace is a
// bounded buffer, but identically bounded in every run being compared).
uint64_t FingerprintMachine(const Machine& machine);

// The architectural-counter digest alone (the counter subset excluded
// from host-only statistics, plus the per-cause trap array).
uint64_t FingerprintCounters(const Counters& counters);

// One line per process: "pid=1 user=alice state=exited code=0" /
// "pid=2 user=bob state=killed cause=machine_fault at 12|34". Stable
// text shared by the fingerprint, fleet results, and ringsim output.
std::string ProcessStatusLine(const Process& process);

}  // namespace rings

#endif  // SRC_FLEET_FINGERPRINT_H_

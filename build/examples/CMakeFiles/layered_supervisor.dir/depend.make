# Empty dependencies file for layered_supervisor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/layered_supervisor.dir/layered_supervisor.cpp.o"
  "CMakeFiles/layered_supervisor.dir/layered_supervisor.cpp.o.d"
  "layered_supervisor"
  "layered_supervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layered_supervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

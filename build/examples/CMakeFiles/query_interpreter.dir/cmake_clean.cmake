file(REMOVE_RECURSE
  "CMakeFiles/query_interpreter.dir/query_interpreter.cpp.o"
  "CMakeFiles/query_interpreter.dir/query_interpreter.cpp.o.d"
  "query_interpreter"
  "query_interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for query_interpreter.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for vmmap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vmmap.dir/vmmap.cpp.o"
  "CMakeFiles/vmmap.dir/vmmap.cpp.o.d"
  "vmmap"
  "vmmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

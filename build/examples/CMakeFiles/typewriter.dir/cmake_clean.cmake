file(REMOVE_RECURSE
  "CMakeFiles/typewriter.dir/typewriter.cpp.o"
  "CMakeFiles/typewriter.dir/typewriter.cpp.o.d"
  "typewriter"
  "typewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

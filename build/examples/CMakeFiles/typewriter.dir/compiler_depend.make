# Empty compiler generated dependencies file for typewriter.
# This may be replaced when dependencies are built.

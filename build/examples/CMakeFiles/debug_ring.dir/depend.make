# Empty dependencies file for debug_ring.
# This may be replaced when dependencies are built.

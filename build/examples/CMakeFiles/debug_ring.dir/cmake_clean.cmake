file(REMOVE_RECURSE
  "CMakeFiles/debug_ring.dir/debug_ring.cpp.o"
  "CMakeFiles/debug_ring.dir/debug_ring.cpp.o.d"
  "debug_ring"
  "debug_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

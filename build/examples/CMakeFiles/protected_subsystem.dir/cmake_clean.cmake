file(REMOVE_RECURSE
  "CMakeFiles/protected_subsystem.dir/protected_subsystem.cpp.o"
  "CMakeFiles/protected_subsystem.dir/protected_subsystem.cpp.o.d"
  "protected_subsystem"
  "protected_subsystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protected_subsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rings_mem.dir/descriptor_segment.cc.o"
  "CMakeFiles/rings_mem.dir/descriptor_segment.cc.o.d"
  "CMakeFiles/rings_mem.dir/page_table.cc.o"
  "CMakeFiles/rings_mem.dir/page_table.cc.o.d"
  "CMakeFiles/rings_mem.dir/physical_memory.cc.o"
  "CMakeFiles/rings_mem.dir/physical_memory.cc.o.d"
  "CMakeFiles/rings_mem.dir/sdw.cc.o"
  "CMakeFiles/rings_mem.dir/sdw.cc.o.d"
  "librings_mem.a"
  "librings_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rings_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

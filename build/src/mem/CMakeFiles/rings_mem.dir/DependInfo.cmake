
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/descriptor_segment.cc" "src/mem/CMakeFiles/rings_mem.dir/descriptor_segment.cc.o" "gcc" "src/mem/CMakeFiles/rings_mem.dir/descriptor_segment.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/rings_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/rings_mem.dir/page_table.cc.o.d"
  "/root/repo/src/mem/physical_memory.cc" "src/mem/CMakeFiles/rings_mem.dir/physical_memory.cc.o" "gcc" "src/mem/CMakeFiles/rings_mem.dir/physical_memory.cc.o.d"
  "/root/repo/src/mem/sdw.cc" "src/mem/CMakeFiles/rings_mem.dir/sdw.cc.o" "gcc" "src/mem/CMakeFiles/rings_mem.dir/sdw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rings_base.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rings_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

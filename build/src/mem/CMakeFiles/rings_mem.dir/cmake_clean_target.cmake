file(REMOVE_RECURSE
  "librings_mem.a"
)

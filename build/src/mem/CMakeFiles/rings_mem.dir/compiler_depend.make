# Empty compiler generated dependencies file for rings_mem.
# This may be replaced when dependencies are built.

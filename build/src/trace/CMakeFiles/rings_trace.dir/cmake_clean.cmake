file(REMOVE_RECURSE
  "CMakeFiles/rings_trace.dir/counters.cc.o"
  "CMakeFiles/rings_trace.dir/counters.cc.o.d"
  "CMakeFiles/rings_trace.dir/event_trace.cc.o"
  "CMakeFiles/rings_trace.dir/event_trace.cc.o.d"
  "librings_trace.a"
  "librings_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rings_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rings_trace.
# This may be replaced when dependencies are built.

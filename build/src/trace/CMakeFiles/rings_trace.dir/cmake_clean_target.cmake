file(REMOVE_RECURSE
  "librings_trace.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/counters.cc" "src/trace/CMakeFiles/rings_trace.dir/counters.cc.o" "gcc" "src/trace/CMakeFiles/rings_trace.dir/counters.cc.o.d"
  "/root/repo/src/trace/event_trace.cc" "src/trace/CMakeFiles/rings_trace.dir/event_trace.cc.o" "gcc" "src/trace/CMakeFiles/rings_trace.dir/event_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rings_base.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rings_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rings_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rings_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for rings_sys.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rings_sys.dir/machine.cc.o"
  "CMakeFiles/rings_sys.dir/machine.cc.o.d"
  "librings_sys.a"
  "librings_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rings_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librings_sys.a"
)

# Empty compiler generated dependencies file for rings_sup.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rings_sup.dir/acl.cc.o"
  "CMakeFiles/rings_sup.dir/acl.cc.o.d"
  "CMakeFiles/rings_sup.dir/audit.cc.o"
  "CMakeFiles/rings_sup.dir/audit.cc.o.d"
  "CMakeFiles/rings_sup.dir/process.cc.o"
  "CMakeFiles/rings_sup.dir/process.cc.o.d"
  "CMakeFiles/rings_sup.dir/segment_registry.cc.o"
  "CMakeFiles/rings_sup.dir/segment_registry.cc.o.d"
  "CMakeFiles/rings_sup.dir/supervisor.cc.o"
  "CMakeFiles/rings_sup.dir/supervisor.cc.o.d"
  "librings_sup.a"
  "librings_sup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rings_sup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

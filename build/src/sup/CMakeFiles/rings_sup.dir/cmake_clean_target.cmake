file(REMOVE_RECURSE
  "librings_sup.a"
)

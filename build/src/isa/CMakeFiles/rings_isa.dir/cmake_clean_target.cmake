file(REMOVE_RECURSE
  "librings_isa.a"
)

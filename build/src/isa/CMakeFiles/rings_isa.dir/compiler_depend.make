# Empty compiler generated dependencies file for rings_isa.
# This may be replaced when dependencies are built.

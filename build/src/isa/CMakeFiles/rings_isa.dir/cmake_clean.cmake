file(REMOVE_RECURSE
  "CMakeFiles/rings_isa.dir/indirect_word.cc.o"
  "CMakeFiles/rings_isa.dir/indirect_word.cc.o.d"
  "CMakeFiles/rings_isa.dir/instruction.cc.o"
  "CMakeFiles/rings_isa.dir/instruction.cc.o.d"
  "CMakeFiles/rings_isa.dir/opcode.cc.o"
  "CMakeFiles/rings_isa.dir/opcode.cc.o.d"
  "librings_isa.a"
  "librings_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rings_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

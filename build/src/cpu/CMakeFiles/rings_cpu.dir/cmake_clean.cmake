file(REMOVE_RECURSE
  "CMakeFiles/rings_cpu.dir/cpu.cc.o"
  "CMakeFiles/rings_cpu.dir/cpu.cc.o.d"
  "CMakeFiles/rings_cpu.dir/registers.cc.o"
  "CMakeFiles/rings_cpu.dir/registers.cc.o.d"
  "CMakeFiles/rings_cpu.dir/sdw_cache.cc.o"
  "CMakeFiles/rings_cpu.dir/sdw_cache.cc.o.d"
  "librings_cpu.a"
  "librings_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rings_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rings_cpu.
# This may be replaced when dependencies are built.

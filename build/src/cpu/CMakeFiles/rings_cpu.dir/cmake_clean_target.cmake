file(REMOVE_RECURSE
  "librings_cpu.a"
)

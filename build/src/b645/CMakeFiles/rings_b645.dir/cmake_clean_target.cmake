file(REMOVE_RECURSE
  "librings_b645.a"
)

# Empty compiler generated dependencies file for rings_b645.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rings_b645.dir/b645_machine.cc.o"
  "CMakeFiles/rings_b645.dir/b645_machine.cc.o.d"
  "librings_b645.a"
  "librings_b645.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rings_b645.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src/b645
# Build directory: /root/repo/build/src/b645
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

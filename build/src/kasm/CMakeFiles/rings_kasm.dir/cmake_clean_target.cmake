file(REMOVE_RECURSE
  "librings_kasm.a"
)

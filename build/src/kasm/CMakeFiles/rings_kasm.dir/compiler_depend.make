# Empty compiler generated dependencies file for rings_kasm.
# This may be replaced when dependencies are built.

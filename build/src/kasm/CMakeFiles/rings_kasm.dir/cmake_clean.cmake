file(REMOVE_RECURSE
  "CMakeFiles/rings_kasm.dir/assembler.cc.o"
  "CMakeFiles/rings_kasm.dir/assembler.cc.o.d"
  "CMakeFiles/rings_kasm.dir/disassembler.cc.o"
  "CMakeFiles/rings_kasm.dir/disassembler.cc.o.d"
  "CMakeFiles/rings_kasm.dir/program.cc.o"
  "CMakeFiles/rings_kasm.dir/program.cc.o.d"
  "librings_kasm.a"
  "librings_kasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rings_kasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rings_base.
# This may be replaced when dependencies are built.

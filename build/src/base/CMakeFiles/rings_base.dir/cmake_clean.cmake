file(REMOVE_RECURSE
  "CMakeFiles/rings_base.dir/log.cc.o"
  "CMakeFiles/rings_base.dir/log.cc.o.d"
  "CMakeFiles/rings_base.dir/strings.cc.o"
  "CMakeFiles/rings_base.dir/strings.cc.o.d"
  "librings_base.a"
  "librings_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rings_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

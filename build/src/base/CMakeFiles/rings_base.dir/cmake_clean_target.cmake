file(REMOVE_RECURSE
  "librings_base.a"
)

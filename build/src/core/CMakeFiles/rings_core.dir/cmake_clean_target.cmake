file(REMOVE_RECURSE
  "librings_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access.cc" "src/core/CMakeFiles/rings_core.dir/access.cc.o" "gcc" "src/core/CMakeFiles/rings_core.dir/access.cc.o.d"
  "/root/repo/src/core/brackets.cc" "src/core/CMakeFiles/rings_core.dir/brackets.cc.o" "gcc" "src/core/CMakeFiles/rings_core.dir/brackets.cc.o.d"
  "/root/repo/src/core/transfer.cc" "src/core/CMakeFiles/rings_core.dir/transfer.cc.o" "gcc" "src/core/CMakeFiles/rings_core.dir/transfer.cc.o.d"
  "/root/repo/src/core/trap_cause.cc" "src/core/CMakeFiles/rings_core.dir/trap_cause.cc.o" "gcc" "src/core/CMakeFiles/rings_core.dir/trap_cause.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rings_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

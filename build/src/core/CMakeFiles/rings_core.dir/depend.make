# Empty dependencies file for rings_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rings_core.dir/access.cc.o"
  "CMakeFiles/rings_core.dir/access.cc.o.d"
  "CMakeFiles/rings_core.dir/brackets.cc.o"
  "CMakeFiles/rings_core.dir/brackets.cc.o.d"
  "CMakeFiles/rings_core.dir/transfer.cc.o"
  "CMakeFiles/rings_core.dir/transfer.cc.o.d"
  "CMakeFiles/rings_core.dir/trap_cause.cc.o"
  "CMakeFiles/rings_core.dir/trap_cause.cc.o.d"
  "librings_core.a"
  "librings_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rings_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

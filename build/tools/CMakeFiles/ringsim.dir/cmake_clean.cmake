file(REMOVE_RECURSE
  "CMakeFiles/ringsim.dir/ringsim.cc.o"
  "CMakeFiles/ringsim.dir/ringsim.cc.o.d"
  "ringsim"
  "ringsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

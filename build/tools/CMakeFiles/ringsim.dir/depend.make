# Empty dependencies file for ringsim.
# This may be replaced when dependencies are built.

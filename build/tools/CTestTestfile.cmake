# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ringsim_hello "/root/repo/build/tools/ringsim" "/root/repo/examples/asm/hello.asm")
set_tests_properties(ringsim_hello PROPERTIES  PASS_REGULAR_EXPRESSION "tty: HELLO" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ringsim_rings_demo "/root/repo/build/tools/ringsim" "--trace" "/root/repo/examples/asm/rings_demo.asm")
set_tests_properties(ringsim_rings_demo PROPERTIES  PASS_REGULAR_EXPRESSION "KILLED \\(write_violation" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ringsim_audit "/root/repo/build/tools/ringsim" "--audit" "/root/repo/examples/asm/hello.asm")
set_tests_properties(ringsim_audit PROPERTIES  PASS_REGULAR_EXPRESSION "audit: 0 finding" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ringsim_listing "/root/repo/build/tools/ringsim" "--list" "/root/repo/examples/asm/hello.asm")
set_tests_properties(ringsim_listing PROPERTIES  PASS_REGULAR_EXPRESSION "segment main" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ringsim_linked "/root/repo/build/tools/ringsim" "--trace" "/root/repo/examples/asm/linked.asm")
set_tests_properties(ringsim_linked PROPERTIES  PASS_REGULAR_EXPRESSION "cause=link_fault.*exited with 2" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")

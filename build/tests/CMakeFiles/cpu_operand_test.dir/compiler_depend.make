# Empty compiler generated dependencies file for cpu_operand_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cpu_operand_test.dir/cpu/operand_test.cc.o"
  "CMakeFiles/cpu_operand_test.dir/cpu/operand_test.cc.o.d"
  "cpu_operand_test"
  "cpu_operand_test.pdb"
  "cpu_operand_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_operand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sup_service_test.
# This may be replaced when dependencies are built.

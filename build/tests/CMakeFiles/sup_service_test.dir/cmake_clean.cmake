file(REMOVE_RECURSE
  "CMakeFiles/sup_service_test.dir/sup/service_test.cc.o"
  "CMakeFiles/sup_service_test.dir/sup/service_test.cc.o.d"
  "sup_service_test"
  "sup_service_test.pdb"
  "sup_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sup_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

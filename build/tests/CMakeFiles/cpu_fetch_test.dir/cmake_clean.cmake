file(REMOVE_RECURSE
  "CMakeFiles/cpu_fetch_test.dir/cpu/fetch_test.cc.o"
  "CMakeFiles/cpu_fetch_test.dir/cpu/fetch_test.cc.o.d"
  "cpu_fetch_test"
  "cpu_fetch_test.pdb"
  "cpu_fetch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_fetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cpu_fetch_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cpu_misc_test.dir/cpu/misc_test.cc.o"
  "CMakeFiles/cpu_misc_test.dir/cpu/misc_test.cc.o.d"
  "cpu_misc_test"
  "cpu_misc_test.pdb"
  "cpu_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for kasm_disassembler_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kasm_disassembler_test.dir/kasm/disassembler_test.cc.o"
  "CMakeFiles/kasm_disassembler_test.dir/kasm/disassembler_test.cc.o.d"
  "kasm_disassembler_test"
  "kasm_disassembler_test.pdb"
  "kasm_disassembler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kasm_disassembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

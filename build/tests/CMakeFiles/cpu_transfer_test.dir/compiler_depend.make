# Empty compiler generated dependencies file for cpu_transfer_test.
# This may be replaced when dependencies are built.

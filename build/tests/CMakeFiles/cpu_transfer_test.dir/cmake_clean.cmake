file(REMOVE_RECURSE
  "CMakeFiles/cpu_transfer_test.dir/cpu/transfer_test.cc.o"
  "CMakeFiles/cpu_transfer_test.dir/cpu/transfer_test.cc.o.d"
  "cpu_transfer_test"
  "cpu_transfer_test.pdb"
  "cpu_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/kasm_assembler_test.dir/kasm/assembler_test.cc.o"
  "CMakeFiles/kasm_assembler_test.dir/kasm/assembler_test.cc.o.d"
  "kasm_assembler_test"
  "kasm_assembler_test.pdb"
  "kasm_assembler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kasm_assembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

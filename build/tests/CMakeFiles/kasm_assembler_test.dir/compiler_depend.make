# Empty compiler generated dependencies file for kasm_assembler_test.
# This may be replaced when dependencies are built.

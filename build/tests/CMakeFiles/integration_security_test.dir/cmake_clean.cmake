file(REMOVE_RECURSE
  "CMakeFiles/integration_security_test.dir/integration/security_test.cc.o"
  "CMakeFiles/integration_security_test.dir/integration/security_test.cc.o.d"
  "integration_security_test"
  "integration_security_test.pdb"
  "integration_security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

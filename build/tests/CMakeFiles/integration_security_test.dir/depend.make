# Empty dependencies file for integration_security_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for mem_paging_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mem_paging_test.dir/mem/paging_test.cc.o"
  "CMakeFiles/mem_paging_test.dir/mem/paging_test.cc.o.d"
  "mem_paging_test"
  "mem_paging_test.pdb"
  "mem_paging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_paging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/isa_instruction_test.dir/isa/instruction_test.cc.o"
  "CMakeFiles/isa_instruction_test.dir/isa/instruction_test.cc.o.d"
  "isa_instruction_test"
  "isa_instruction_test.pdb"
  "isa_instruction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_instruction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for base_strings_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sup_supervisor_test.dir/sup/supervisor_test.cc.o"
  "CMakeFiles/sup_supervisor_test.dir/sup/supervisor_test.cc.o.d"
  "sup_supervisor_test"
  "sup_supervisor_test.pdb"
  "sup_supervisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sup_supervisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sup_supervisor_test.
# This may be replaced when dependencies are built.

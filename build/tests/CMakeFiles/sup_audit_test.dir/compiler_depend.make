# Empty compiler generated dependencies file for sup_audit_test.
# This may be replaced when dependencies are built.

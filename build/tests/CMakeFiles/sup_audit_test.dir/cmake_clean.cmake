file(REMOVE_RECURSE
  "CMakeFiles/sup_audit_test.dir/sup/audit_test.cc.o"
  "CMakeFiles/sup_audit_test.dir/sup/audit_test.cc.o.d"
  "sup_audit_test"
  "sup_audit_test.pdb"
  "sup_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sup_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

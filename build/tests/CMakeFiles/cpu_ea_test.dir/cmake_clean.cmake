file(REMOVE_RECURSE
  "CMakeFiles/cpu_ea_test.dir/cpu/ea_test.cc.o"
  "CMakeFiles/cpu_ea_test.dir/cpu/ea_test.cc.o.d"
  "cpu_ea_test"
  "cpu_ea_test.pdb"
  "cpu_ea_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_ea_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

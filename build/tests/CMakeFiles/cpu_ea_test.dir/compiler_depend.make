# Empty compiler generated dependencies file for cpu_ea_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for sup_acl_test.
# This may be replaced when dependencies are built.

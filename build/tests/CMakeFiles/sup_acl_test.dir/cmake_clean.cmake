file(REMOVE_RECURSE
  "CMakeFiles/sup_acl_test.dir/sup/acl_test.cc.o"
  "CMakeFiles/sup_acl_test.dir/sup/acl_test.cc.o.d"
  "sup_acl_test"
  "sup_acl_test.pdb"
  "sup_acl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sup_acl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/core_access_test.dir/core/access_test.cc.o"
  "CMakeFiles/core_access_test.dir/core/access_test.cc.o.d"
  "core_access_test"
  "core_access_test.pdb"
  "core_access_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_access_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

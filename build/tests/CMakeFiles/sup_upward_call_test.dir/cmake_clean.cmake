file(REMOVE_RECURSE
  "CMakeFiles/sup_upward_call_test.dir/sup/upward_call_test.cc.o"
  "CMakeFiles/sup_upward_call_test.dir/sup/upward_call_test.cc.o.d"
  "sup_upward_call_test"
  "sup_upward_call_test.pdb"
  "sup_upward_call_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sup_upward_call_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

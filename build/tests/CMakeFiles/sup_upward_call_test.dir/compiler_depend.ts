# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sup_upward_call_test.

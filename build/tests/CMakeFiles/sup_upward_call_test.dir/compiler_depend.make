# Empty compiler generated dependencies file for sup_upward_call_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sys_machine_test.dir/sys/machine_test.cc.o"
  "CMakeFiles/sys_machine_test.dir/sys/machine_test.cc.o.d"
  "sys_machine_test"
  "sys_machine_test.pdb"
  "sys_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sys_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sys_machine_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/integration_multiprocess_test.dir/integration/multiprocess_test.cc.o"
  "CMakeFiles/integration_multiprocess_test.dir/integration/multiprocess_test.cc.o.d"
  "integration_multiprocess_test"
  "integration_multiprocess_test.pdb"
  "integration_multiprocess_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_multiprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for integration_multiprocess_test.
# This may be replaced when dependencies are built.

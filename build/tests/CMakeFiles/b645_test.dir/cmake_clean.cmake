file(REMOVE_RECURSE
  "CMakeFiles/b645_test.dir/b645/b645_test.cc.o"
  "CMakeFiles/b645_test.dir/b645/b645_test.cc.o.d"
  "b645_test"
  "b645_test.pdb"
  "b645_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b645_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

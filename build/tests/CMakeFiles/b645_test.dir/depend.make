# Empty dependencies file for b645_test.
# This may be replaced when dependencies are built.

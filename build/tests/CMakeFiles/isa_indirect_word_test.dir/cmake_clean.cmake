file(REMOVE_RECURSE
  "CMakeFiles/isa_indirect_word_test.dir/isa/indirect_word_test.cc.o"
  "CMakeFiles/isa_indirect_word_test.dir/isa/indirect_word_test.cc.o.d"
  "isa_indirect_word_test"
  "isa_indirect_word_test.pdb"
  "isa_indirect_word_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_indirect_word_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for isa_indirect_word_test.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for isa_indirect_word_test.

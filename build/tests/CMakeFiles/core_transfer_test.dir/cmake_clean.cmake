file(REMOVE_RECURSE
  "CMakeFiles/core_transfer_test.dir/core/transfer_test.cc.o"
  "CMakeFiles/core_transfer_test.dir/core/transfer_test.cc.o.d"
  "core_transfer_test"
  "core_transfer_test.pdb"
  "core_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for integration_convention_test.
# This may be replaced when dependencies are built.

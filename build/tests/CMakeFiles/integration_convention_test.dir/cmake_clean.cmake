file(REMOVE_RECURSE
  "CMakeFiles/integration_convention_test.dir/integration/convention_test.cc.o"
  "CMakeFiles/integration_convention_test.dir/integration/convention_test.cc.o.d"
  "integration_convention_test"
  "integration_convention_test.pdb"
  "integration_convention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_convention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

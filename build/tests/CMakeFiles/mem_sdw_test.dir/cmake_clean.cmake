file(REMOVE_RECURSE
  "CMakeFiles/mem_sdw_test.dir/mem/sdw_test.cc.o"
  "CMakeFiles/mem_sdw_test.dir/mem/sdw_test.cc.o.d"
  "mem_sdw_test"
  "mem_sdw_test.pdb"
  "mem_sdw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_sdw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mem_sdw_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_brackets_test.dir/core/brackets_test.cc.o"
  "CMakeFiles/core_brackets_test.dir/core/brackets_test.cc.o.d"
  "core_brackets_test"
  "core_brackets_test.pdb"
  "core_brackets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_brackets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

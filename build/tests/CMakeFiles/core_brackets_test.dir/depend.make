# Empty dependencies file for core_brackets_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sys_argref_test.dir/sys/argref_test.cc.o"
  "CMakeFiles/sys_argref_test.dir/sys/argref_test.cc.o.d"
  "sys_argref_test"
  "sys_argref_test.pdb"
  "sys_argref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sys_argref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

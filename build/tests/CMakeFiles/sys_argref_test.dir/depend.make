# Empty dependencies file for sys_argref_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for cpu_return_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cpu_return_test.dir/cpu/return_test.cc.o"
  "CMakeFiles/cpu_return_test.dir/cpu/return_test.cc.o.d"
  "cpu_return_test"
  "cpu_return_test.pdb"
  "cpu_return_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_return_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sup_registry_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sup_registry_test.dir/sup/registry_test.cc.o"
  "CMakeFiles/sup_registry_test.dir/sup/registry_test.cc.o.d"
  "sup_registry_test"
  "sup_registry_test.pdb"
  "sup_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sup_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

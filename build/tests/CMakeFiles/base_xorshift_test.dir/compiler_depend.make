# Empty compiler generated dependencies file for base_xorshift_test.
# This may be replaced when dependencies are built.

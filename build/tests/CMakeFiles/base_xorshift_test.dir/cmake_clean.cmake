file(REMOVE_RECURSE
  "CMakeFiles/base_xorshift_test.dir/base/xorshift_test.cc.o"
  "CMakeFiles/base_xorshift_test.dir/base/xorshift_test.cc.o.d"
  "base_xorshift_test"
  "base_xorshift_test.pdb"
  "base_xorshift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_xorshift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

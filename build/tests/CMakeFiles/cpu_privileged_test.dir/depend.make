# Empty dependencies file for cpu_privileged_test.
# This may be replaced when dependencies are built.

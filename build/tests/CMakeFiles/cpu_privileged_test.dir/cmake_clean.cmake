file(REMOVE_RECURSE
  "CMakeFiles/cpu_privileged_test.dir/cpu/privileged_test.cc.o"
  "CMakeFiles/cpu_privileged_test.dir/cpu/privileged_test.cc.o.d"
  "cpu_privileged_test"
  "cpu_privileged_test.pdb"
  "cpu_privileged_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_privileged_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/base_bitfield_test.dir/base/bitfield_test.cc.o"
  "CMakeFiles/base_bitfield_test.dir/base/bitfield_test.cc.o.d"
  "base_bitfield_test"
  "base_bitfield_test.pdb"
  "base_bitfield_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_bitfield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

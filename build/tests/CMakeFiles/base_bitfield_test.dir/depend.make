# Empty dependencies file for base_bitfield_test.
# This may be replaced when dependencies are built.

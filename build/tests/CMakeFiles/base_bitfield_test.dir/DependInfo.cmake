
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/base/bitfield_test.cc" "tests/CMakeFiles/base_bitfield_test.dir/base/bitfield_test.cc.o" "gcc" "tests/CMakeFiles/base_bitfield_test.dir/base/bitfield_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rings_base.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rings_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rings_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rings_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rings_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/kasm/CMakeFiles/rings_kasm.dir/DependInfo.cmake"
  "/root/repo/build/src/sup/CMakeFiles/rings_sup.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/rings_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/b645/CMakeFiles/rings_b645.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rings_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

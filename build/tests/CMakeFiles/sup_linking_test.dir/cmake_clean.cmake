file(REMOVE_RECURSE
  "CMakeFiles/sup_linking_test.dir/sup/linking_test.cc.o"
  "CMakeFiles/sup_linking_test.dir/sup/linking_test.cc.o.d"
  "sup_linking_test"
  "sup_linking_test.pdb"
  "sup_linking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sup_linking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sup_linking_test.
# This may be replaced when dependencies are built.

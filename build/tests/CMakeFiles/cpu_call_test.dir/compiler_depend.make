# Empty compiler generated dependencies file for cpu_call_test.
# This may be replaced when dependencies are built.

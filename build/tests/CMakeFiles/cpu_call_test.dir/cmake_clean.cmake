file(REMOVE_RECURSE
  "CMakeFiles/cpu_call_test.dir/cpu/call_test.cc.o"
  "CMakeFiles/cpu_call_test.dir/cpu/call_test.cc.o.d"
  "cpu_call_test"
  "cpu_call_test.pdb"
  "cpu_call_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_call_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

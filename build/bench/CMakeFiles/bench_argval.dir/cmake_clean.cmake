file(REMOVE_RECURSE
  "CMakeFiles/bench_argval.dir/bench_argval.cc.o"
  "CMakeFiles/bench_argval.dir/bench_argval.cc.o.d"
  "bench_argval"
  "bench_argval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_argval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

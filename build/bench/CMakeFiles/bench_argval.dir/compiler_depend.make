# Empty compiler generated dependencies file for bench_argval.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_filesearch.dir/bench_filesearch.cc.o"
  "CMakeFiles/bench_filesearch.dir/bench_filesearch.cc.o.d"
  "bench_filesearch"
  "bench_filesearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filesearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_filesearch.
# This may be replaced when dependencies are built.

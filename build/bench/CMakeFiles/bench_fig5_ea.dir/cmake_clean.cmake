file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ea.dir/bench_fig5_ea.cc.o"
  "CMakeFiles/bench_fig5_ea.dir/bench_fig5_ea.cc.o.d"
  "bench_fig5_ea"
  "bench_fig5_ea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

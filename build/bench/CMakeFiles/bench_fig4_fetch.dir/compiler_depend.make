# Empty compiler generated dependencies file for bench_fig4_fetch.
# This may be replaced when dependencies are built.

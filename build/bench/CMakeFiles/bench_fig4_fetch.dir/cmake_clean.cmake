file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fetch.dir/bench_fig4_fetch.cc.o"
  "CMakeFiles/bench_fig4_fetch.dir/bench_fig4_fetch.cc.o.d"
  "bench_fig4_fetch"
  "bench_fig4_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_typewriter.dir/bench_typewriter.cc.o"
  "CMakeFiles/bench_typewriter.dir/bench_typewriter.cc.o.d"
  "bench_typewriter"
  "bench_typewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_typewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_typewriter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_crossring.dir/bench_claim_crossring.cc.o"
  "CMakeFiles/bench_claim_crossring.dir/bench_claim_crossring.cc.o.d"
  "bench_claim_crossring"
  "bench_claim_crossring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_crossring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_claim_crossring.
# This may be replaced when dependencies are built.

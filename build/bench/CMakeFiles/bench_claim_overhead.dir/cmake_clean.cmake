file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_overhead.dir/bench_claim_overhead.cc.o"
  "CMakeFiles/bench_claim_overhead.dir/bench_claim_overhead.cc.o.d"
  "bench_claim_overhead"
  "bench_claim_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

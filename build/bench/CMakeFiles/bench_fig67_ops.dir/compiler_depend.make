# Empty compiler generated dependencies file for bench_fig67_ops.
# This may be replaced when dependencies are built.

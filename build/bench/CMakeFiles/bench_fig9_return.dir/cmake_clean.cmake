file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_return.dir/bench_fig9_return.cc.o"
  "CMakeFiles/bench_fig9_return.dir/bench_fig9_return.cc.o.d"
  "bench_fig9_return"
  "bench_fig9_return.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_return.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig9_return.
# This may be replaced when dependencies are built.

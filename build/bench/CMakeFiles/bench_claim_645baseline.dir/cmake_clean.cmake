file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_645baseline.dir/bench_claim_645baseline.cc.o"
  "CMakeFiles/bench_claim_645baseline.dir/bench_claim_645baseline.cc.o.d"
  "bench_claim_645baseline"
  "bench_claim_645baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_645baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

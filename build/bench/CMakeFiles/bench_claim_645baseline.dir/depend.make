# Empty dependencies file for bench_claim_645baseline.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig8_call.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_call.dir/bench_fig8_call.cc.o"
  "CMakeFiles/bench_fig8_call.dir/bench_fig8_call.cc.o.d"
  "bench_fig8_call"
  "bench_fig8_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

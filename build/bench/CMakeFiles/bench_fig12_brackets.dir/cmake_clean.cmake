file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_brackets.dir/bench_fig12_brackets.cc.o"
  "CMakeFiles/bench_fig12_brackets.dir/bench_fig12_brackets.cc.o.d"
  "bench_fig12_brackets"
  "bench_fig12_brackets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_brackets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

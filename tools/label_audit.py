#!/usr/bin/env python3
"""Audit ctest labels against test names.

CI runs several suites by label (``ctest -L fuzz``, ``-L fleet``,
``-L fault``, ``-L snapshot``, ``-L serve``). A test that belongs to one
of those families but was registered without the label silently drops
out of its suite — the suite stays green while covering less. This audit
walks the full test list (``ctest --show-only=json-v1``) and enforces:

  1. every test whose name or binary mentions fuzz/fleet/fault/soak/
     snapshot/serve/ringsimd carries the corresponding label, and
  2. none of the labeled suites is empty.

Run by ctest itself as ``ctest_label_audit``; prints ``label audit: OK``
on success, one line per violation otherwise.
"""

import argparse
import json
import os
import re
import subprocess
import sys

# token prefix -> required label
REQUIRED = {
    "fuzz": "fuzz",
    "fleet": "fleet",
    "fault": "fault",
    "soak": "fault",
    "snapshot": "snapshot",
    "serve": "serve",
    "ringsimd": "serve",  # daemon smoke tests belong to the serve suite
}


def tokens_of(text):
    return [t.lower() for t in re.split(r"[_.\-/]", text) if t]


def required_labels(test):
    toks = set(tokens_of(test["name"]))
    for part in test.get("command", []):
        base = os.path.basename(part)
        # Only the executable and script operands, not flag values.
        if not part.startswith("-"):
            toks.update(tokens_of(base))
    needed = set()
    for tok in toks:
        for prefix, label in REQUIRED.items():
            if tok.startswith(prefix):
                needed.add(label)
    return needed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ctest", default="ctest", help="ctest executable")
    parser.add_argument("--build-dir", required=True, help="CMake build directory")
    args = parser.parse_args()

    out = subprocess.run(
        [args.ctest, "--show-only=json-v1"],
        cwd=args.build_dir,
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    tests = json.loads(out).get("tests", [])
    if not tests:
        print("label audit: no tests found in", args.build_dir)
        return 1

    suite_sizes = {label: 0 for label in set(REQUIRED.values())}
    violations = []
    for test in tests:
        labels = set()
        for prop in test.get("properties", []):
            if prop.get("name") == "LABELS":
                labels.update(prop.get("value", []))
        for label in labels:
            if label in suite_sizes:
                suite_sizes[label] += 1
        for label in sorted(required_labels(test)):
            if label not in labels:
                violations.append(
                    "test '%s' should carry label '%s' (has: %s)"
                    % (test["name"], label, sorted(labels) or "none")
                )

    for label, size in sorted(suite_sizes.items()):
        if size == 0:
            violations.append("label suite '%s' is empty" % label)

    if violations:
        for v in violations:
            print("label audit:", v)
        print("label audit: %d violation(s) in %d test(s)" % (len(violations), len(tests)))
        return 1

    print(
        "label audit: OK (%d tests; %s)"
        % (
            len(tests),
            ", ".join("%s=%d" % (label, n) for label, n in sorted(suite_sizes.items())),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

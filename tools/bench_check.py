#!/usr/bin/env python3
"""Benchmark regression gate for the ring-hardware simulator.

The gate compares *simulated* per-operation costs — benchmark counters
prefixed ``sim_`` (e.g. ``sim_cycles_per_call`` from bench_fig8_call,
``sim_cycles_per_return`` from bench_fig9_return, and ``sim_cycles`` /
``sim_page_walks`` / ``sim_tlb_hits`` from the paged workloads in
bench_paging and bench_filesearch). These are deterministic properties of
the simulated machine's cycle model, so they must match the committed
baseline exactly (up to float formatting); any drift means the change
altered the cost of a ring crossing or a paged reference and must either
be fixed or acknowledged by regenerating the baseline. Because the
baseline stores fast-path and ``*_NoFastPath`` variants side by side with
identical ``sim_cycles``, it also pins the invariant that the host-side
fast path (verdict cache, decoded-instruction cache, software TLB,
superblock engine) never changes simulated cost. Host wall-clock
(``real_time``, ``wall_median_ns``) is recorded in the merged artifact
for humans but is NOT gated by default — it varies by host.

Benchmarks whose names differ only in a ``threads:N`` argument (the
fleet-engine scaling variants from bench_fleet) must report identical
``sim_*`` counters: the fleet determinism contract says thread count may
change host throughput but never any simulated result. The gate enforces
this invariance across every loaded result, independent of the baseline,
so a determinism break fails CI even before the baseline is consulted.

Wall-clock CAN be gated opt-in, on noise-robust statistics: each
benchmark samples its timed region at least 5 times and reports the
minimum as ``wall_min_ns`` (scheduling and frequency jitter only ever
add time, so the min converges on the true cost); the serving benchmark
additionally reports ``wall_machines_per_sec`` (best observed
throughput) and ``wall_p99_ns`` (best observed tail turnaround). The
wall gate needs BOTH a baseline entry with those counters — produced by
``update --include-wall`` — AND the ``check --wall`` flag; without the
flag, wall entries in the baseline are ignored, so the same committed
baseline serves the exact sim gate everywhere and the wall gate only
where it is meaningful (a host comparable to the one that produced the
baseline, running the default engine configuration — the CI ablation
passes with the engines forced off are slower by design and check
sim-only). When armed, the gate fails one-sided by WALL_REL_TOLERANCE:
latencies (``wall_min_ns``, ``wall_p99_ns``) may not rise, throughput
(``wall_machines_per_sec``) may not drop; getting better never fails.

Usage:

  # CI / local check: compare google-benchmark JSON outputs against the
  # committed baseline, and merge them into one artifact for upload.
  tools/bench_check.py check --baseline BENCH_baseline.json \
      --merge-out BENCH_pr.json fig8.json fig9.json

  # Regenerate the baseline after an *intentional* cycle-model change:
  cd build
  ./bench/bench_fig8_call --benchmark_out=fig8.json --benchmark_out_format=json
  ./bench/bench_fig9_return --benchmark_out=fig9.json --benchmark_out_format=json
  ./bench/bench_paging --benchmark_out=paging.json --benchmark_out_format=json
  ./bench/bench_filesearch --benchmark_out=filesearch.json --benchmark_out_format=json
  cd ..
  tools/bench_check.py update --baseline BENCH_baseline.json \
      build/fig8.json build/fig9.json build/paging.json build/filesearch.json

Exit status: 0 on pass, 1 on drift or missing benchmarks, 2 on bad input.
"""

import argparse
import json
import re
import sys

# Relative tolerance for comparing simulated costs. The values are
# deterministic; the tolerance only absorbs double formatting round trips
# through JSON.
REL_TOLERANCE = 1e-9

# One-sided relative tolerance for the opt-in wall-clock gate: a
# wall_min_ns regression beyond baseline * (1 + tolerance) fails. Generous
# on purpose — even the min-of-N statistic moves with the host's thermal
# and scheduling state.
WALL_REL_TOLERANCE = 0.5

# Wall counters the opt-in gate understands, with the direction that
# counts as a regression. "lower": the result may not exceed baseline *
# (1 + WALL_REL_TOLERANCE) (latencies). "higher": the result may not fall
# below baseline * (1 - WALL_REL_TOLERANCE) (throughput — the serving
# benchmark reports machines retired per second). Getting better never
# fails in either direction.
WALL_GATED = {
    "wall_min_ns": "lower",
    "wall_p99_ns": "lower",
    "wall_machines_per_sec": "higher",
}


def load_results(paths):
    """Merge google-benchmark JSON files into {name: {real_time, time_unit, sim}}.

    Also returns {name: {"source": json_path, "executable": binary}} so a
    failing gate can print the exact command that reruns just that
    benchmark ("executable" comes from the google-benchmark context block;
    it is None for hand-written JSON).
    """
    merged = {}
    origins = {}
    for path in paths:
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, ValueError) as e:
            sys.exit(f"bench_check: cannot read {path}: {e}")
        context = data.get("context", {})
        executable = context.get("executable") if isinstance(context, dict) else None
        benches = data.get("benchmarks", [])
        if not isinstance(benches, list):
            sys.exit(f'bench_check: {path}: "benchmarks" is not a list')
        for i, bench in enumerate(benches):
            if not isinstance(bench, dict):
                sys.exit(f"bench_check: {path}: benchmark entry #{i} is not an object")
            # Skip mean/median/stddev rows from --benchmark_repetitions.
            if bench.get("run_type") == "aggregate":
                continue
            name = bench.get("name")
            if not isinstance(name, str):
                sys.exit(f'bench_check: {path}: benchmark entry #{i} has no "name" key')
            sim = {k: v for k, v in bench.items() if k.startswith("sim_")}
            wall = {k: v for k, v in bench.items() if k.startswith("wall_")}
            merged[name] = {
                "real_time": bench.get("real_time"),
                "cpu_time": bench.get("cpu_time"),
                "time_unit": bench.get("time_unit"),
                "sim": sim,
                "wall": wall,
            }
            origins[name] = {"source": path, "executable": executable}
    return merged, origins


def rerun_commands(failing_names, origins, baseline_path):
    """Build the copy-pasteable rerun lines for a set of failing gates."""
    lines = []
    by_exe = {}
    for name in sorted(failing_names):
        origin = origins.get(name)
        if origin is None:
            lines.append(
                f"  (no result file produced {name}; rerun the full suite —"
                " see tools/bench_check.py --help)"
            )
            continue
        exe = origin["executable"] or f"<the benchmark binary behind {origin['source']}>"
        by_exe.setdefault(exe, []).append(name)
    for exe, names in sorted(by_exe.items()):
        pattern = "|".join(re.escape(n) for n in names)
        lines.append(f"  {exe} --benchmark_filter='^({pattern})$'")
    lines.append(
        f"  python3 tools/bench_check.py check --baseline {baseline_path}"
        " <result.json ...>   # full gate"
    )
    return lines


def drifted(baseline_value, pr_value):
    scale = max(abs(baseline_value), abs(pr_value), 1.0)
    return abs(baseline_value - pr_value) > REL_TOLERANCE * scale


def check_thread_invariance(results):
    """sim_* counters must be identical across thread-count variants.

    Groups benchmarks whose names differ only in a ``threads:N`` argument
    and reports any sim_* counter that varies within a group. Returns a
    list of failure lines (empty when the invariant holds) and the set of
    benchmark names involved in a failure.
    """
    groups = {}
    for name, entry in sorted(results.items()):
        key = re.sub(r"threads:\d+", "threads:*", name)
        if key != name:
            groups.setdefault(key, []).append((name, entry["sim"]))
    failures = []
    failing_names = set()
    for key, members in sorted(groups.items()):
        if len(members) < 2:
            continue
        ref_name, ref_sim = members[0]
        counters = set(ref_sim)
        for name, sim in members[1:]:
            counters |= set(sim)
        for counter in sorted(counters):
            values = {name: sim.get(counter) for name, sim in members}
            distinct = set(values.values())
            if len(distinct) == 1:
                continue
            detail = ", ".join(f"{n}={v!r}" for n, v in sorted(values.items()))
            failures.append(
                f"  {key}: {counter} varies with thread count ({detail})"
            )
            failing_names.update(values)
        if not any(key in f for f in failures):
            print(
                f"ok: {key}: {len(counters)} sim counter(s) invariant across"
                f" {len(members)} thread variant(s)"
            )
    return failures, failing_names


def cmd_check(args):
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)["benchmarks"]
    except (OSError, ValueError, KeyError) as e:
        sys.exit(f"bench_check: cannot read baseline {args.baseline}: {e}")
    if not isinstance(baseline, dict):
        sys.exit(
            f'bench_check: baseline {args.baseline}: "benchmarks" must map'
            " benchmark names to counter objects"
        )
    for name, expected in sorted(baseline.items()):
        if not isinstance(expected, dict):
            sys.exit(
                f'bench_check: baseline {args.baseline}: entry "{name}" must be'
                " an object of counters (regenerate with"
                " tools/bench_check.py update)"
            )
        for counter, value in sorted(expected.items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                sys.exit(
                    f'bench_check: baseline {args.baseline}: "{name}" counter'
                    f' "{counter}" is not a number (got {value!r})'
                )
    results, origins = load_results(args.results)

    if args.merge_out:
        with open(args.merge_out, "w") as f:
            json.dump({"benchmarks": results}, f, indent=2, sort_keys=True)
            f.write("\n")

    failures, failing_names = check_thread_invariance(results)
    for name, expected in sorted(baseline.items()):
        got = results.get(name)
        if got is None:
            failures.append(f"  {name}: benchmark missing from results")
            failing_names.add(name)
            continue
        for counter, expected_value in sorted(expected.items()):
            if counter.startswith("wall_"):
                direction = WALL_GATED.get(counter)
                if direction is None or not args.wall:
                    continue  # informational unless the wall gate is armed
                actual = got["wall"].get(counter)
                if actual is None:
                    failures.append(f"  {name}: counter {counter} missing")
                    failing_names.add(name)
                elif direction == "lower" and actual > expected_value * (
                    1.0 + WALL_REL_TOLERANCE
                ):
                    failures.append(
                        f"  {name}: {counter} regressed: baseline"
                        f" {expected_value:.0f} vs result {actual:.0f}"
                        f" (> {WALL_REL_TOLERANCE:.0%} slower)"
                    )
                    failing_names.add(name)
                elif direction == "higher" and actual < expected_value * (
                    1.0 - WALL_REL_TOLERANCE
                ):
                    failures.append(
                        f"  {name}: {counter} regressed: baseline"
                        f" {expected_value:.0f} vs result {actual:.0f}"
                        f" (> {WALL_REL_TOLERANCE:.0%} throughput drop)"
                    )
                    failing_names.add(name)
                else:
                    print(f"ok: {name}: {counter} = {actual:.0f} (wall gate)")
                continue
            actual = got["sim"].get(counter)
            if actual is None:
                failures.append(f"  {name}: counter {counter} missing")
                failing_names.add(name)
            elif drifted(expected_value, actual):
                failures.append(
                    f"  {name}: {counter} drifted: baseline {expected_value!r}"
                    f" vs result {actual!r}"
                )
                failing_names.add(name)
            else:
                print(f"ok: {name}: {counter} = {actual}")

    if failures:
        print("\nbench_check: simulated-cost drift detected:", file=sys.stderr)
        for line in failures:
            print(line, file=sys.stderr)
        print("\nTo rerun just the failing gate(s) locally:", file=sys.stderr)
        for line in rerun_commands(failing_names, origins, args.baseline):
            print(line, file=sys.stderr)
        print(
            "\nIf the drift is an intentional cycle-model change, regenerate the\n"
            "baseline (see tools/bench_check.py --help) and commit it with the\n"
            "change that explains it.",
            file=sys.stderr,
        )
        return 1
    print(f"bench_check: {len(baseline)} benchmark(s) match the baseline")
    return 0


def cmd_update(args):
    results, _ = load_results(args.results)
    benchmarks = {}
    for name, entry in sorted(results.items()):
        if not entry["sim"]:
            continue
        counters = dict(entry["sim"])
        if args.include_wall:
            for wall_counter in WALL_GATED:
                if wall_counter in entry["wall"]:
                    counters[wall_counter] = entry["wall"][wall_counter]
        benchmarks[name] = counters
    if not benchmarks:
        sys.exit("bench_check: no sim_* counters found; nothing to baseline")
    payload = {
        "comment": (
            "Deterministic simulated-cost baseline for the CI bench gate. "
            "Values are simulated cycles/instructions; wall_min_ns entries "
            "(from update --include-wall) are gated only by check --wall "
            "on a comparable host and ignored otherwise. "
            "Regenerate with tools/bench_check.py update (see its --help)."
        ),
        "benchmarks": benchmarks,
    }
    with open(args.baseline, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_check: wrote {args.baseline} with {len(benchmarks)} benchmark(s)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="compare results against the baseline")
    check.add_argument("--baseline", required=True)
    check.add_argument("--merge-out", help="write merged results (CI artifact)")
    check.add_argument(
        "--wall",
        action="store_true",
        help="arm the one-sided wall_min_ns gate for baseline entries that"
        " carry one (same-host, default-configuration runs only)",
    )
    check.add_argument("results", nargs="+", help="google-benchmark JSON files")
    check.set_defaults(func=cmd_check)

    update = sub.add_parser("update", help="regenerate the baseline")
    update.add_argument("--baseline", required=True)
    update.add_argument(
        "--include-wall",
        action="store_true",
        help="also baseline wall_min_ns (gated only by `check --wall` on a"
        " comparable host; ignored by the default sim-only check)",
    )
    update.add_argument("results", nargs="+", help="google-benchmark JSON files")
    update.set_defaults(func=cmd_update)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()

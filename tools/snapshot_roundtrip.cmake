# Snapshot round trip through the ringsim CLI:
#   1. run the program under a small cycle budget and write an image
#   2. restore the image and run to completion
#   3. the restored run must finish cleanly and produce the program's tty
# Invoked by ctest with -DRINGSIM=... -DPROGRAM=... -DWORKDIR=...
set(image "${WORKDIR}/roundtrip.snapshot")
file(REMOVE "${image}")

execute_process(
  COMMAND "${RINGSIM}" --max-cycles=2000 "--snapshot-out=${image}" "${PROGRAM}"
  RESULT_VARIABLE save_result
  OUTPUT_VARIABLE save_output
  ERROR_VARIABLE save_output)
# The truncated run may or may not have finished; only the image matters.
if(NOT EXISTS "${image}")
  message(FATAL_ERROR "snapshot image was not written (exit ${save_result}): ${save_output}")
endif()

execute_process(
  COMMAND "${RINGSIM}" "--restore=${image}"
  RESULT_VARIABLE restore_result
  OUTPUT_VARIABLE restore_output
  ERROR_VARIABLE restore_output)
# hello.asm's process exits with code 5, which ringsim propagates.
if(NOT restore_result EQUAL 5)
  message(FATAL_ERROR "restored run failed (exit ${restore_result}): ${restore_output}")
endif()
if(NOT restore_output MATCHES "tty: HELLO")
  message(FATAL_ERROR "restored run did not produce the program tty: ${restore_output}")
endif()

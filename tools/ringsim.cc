// ringsim — run a guest assembly program on the ring-protection machine
// from the command line.
//
//   ringsim [options] program.asm
//
// Options:
//   --list           print a disassembly listing of every segment
//   --trace          print ring switches and traps as they happen
//   --max-cycles=N   cycle budget (default 100M)
//   --fault-rate=N   enable deterministic fault injection: every site at
//                    N parts per million per opportunity
//   --fault-seed=N   fault-injection RNG seed (default 1); a (seed, rate)
//                    pair replays exactly
//   --no-fastpath    disable the host-side verdict/decoded-instruction
//                    caches (simulated cycles are identical either way)
//   --no-block-engine disable the superblock execution engine while
//                    keeping the caches (same guarantee: host-only)
//   --no-chain       disable block-to-block chaining and the monomorphic
//                    CALL/RETURN crossing cache (host-only; simulated
//                    cycles identical either way)
//   --no-shared-decode  each machine builds a private decode image
//                    instead of sharing one per distinct program
//   --stats          print the processor's event counters after the run
//   --fleet=N        run N independent machines, each loaded with the
//                    same program, across a worker-thread pool; prints a
//                    per-machine status line and a fleet summary, and
//                    exits nonzero if any machine does. With
//                    --fault-rate, machine i is seeded fault-seed+i.
//   --threads=T      fleet worker threads (default 1); per-machine
//                    results are bit-identical for every T
//   --slice-cycles=N simulated cycles per fleet scheduling quantum
//   --cold-boot      (fleet) construct+load every machine from scratch
//                    instead of cloning a golden image (ablation; the
//                    per-machine results are bit-identical either way —
//                    --fault-rate implies it, since each machine needs
//                    its own injector stream)
//   --checkpoint-every=N  (fleet) checkpoint each machine every N quanta
//                    and restart failed machines from their last verified
//                    checkpoint (see --max-restarts)
//   --max-restarts=R (fleet) restart a failed machine from its checkpoint
//                    up to R times (default 0: failures retire)
//   --snapshot-out=F serialize the machine's complete architectural state
//                    to F after the run (combine with --max-cycles to
//                    capture a mid-program image)
//   --restore=F      restore a machine from image F (instead of loading a
//                    program) and run it to completion
//   --fuzz=N         differential fuzzing: generate N random guest
//                    programs (seeds S, S+1, ...) and check each under
//                    the slow path, fast path, superblock engine, fleet
//                    (1/4/8 threads), and a snapshot/restore cut; exits 1
//                    on the first divergence, writing a self-contained
//                    repro file
//   --fuzz-seed=S    first generator seed (default 1); a seed fully
//                    determines the program, so a seed is a repro
//   --shrink         (fuzz) minimize a diverging program before writing
//                    the repro (delete-ranges, then simplify-operands)
//   --fuzz-repro-out=F  (fuzz) repro file path (default fuzz_repro_<seed>.asm)
//   --fuzz-ablation  (fuzz) deliberately sabotage the superblock engine
//                    (one spurious cycle per in-block CALL) to prove the
//                    oracle catches a broken engine; exits 1 when caught
//   --fuzz-chain-ablation  (fuzz) same, for chaining: one spurious cycle
//                    per followed block link
//
// The program file carries its own manifest in `;;` directive lines
// (ordinary `;` comments to the assembler; see src/sys/manifest.h):
//
//   ;; acl <segment> <user|*> procedure <r1> <r2> [<r3>] [write]
//   ;; acl <segment> <user|*> data <write_top> <read_top>
//   ;; acl <segment> <user|*> rodata <read_top>
//   ;; segment <name> <words> paged [demand|populate]
//   ;; start <segment> <entry> <ring> [<user>]
//   ;; tty-input <text until end of line>
//
// Example (examples/asm/hello.asm):
//   ;; acl main * procedure 4 4
//   ;; start main start 4
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/fleet/fleet.h"
#include "src/fleet/golden_image.h"
#include "src/fuzz/differential.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/shrink.h"
#include "src/kasm/assembler.h"
#include "src/kasm/disassembler.h"
#include "src/snapshot/snapshot.h"
#include "src/sup/audit.h"
#include "src/sys/machine.h"
#include "src/sys/manifest.h"

namespace rings {
namespace {

// Everything a run needs from the program file: the raw source, the `;;`
// manifest, and the assembled segments. ok=false means the error was
// already reported.
struct LoadedSource {
  std::string source;
  Manifest manifest;
  AssembleResult assembled;
  bool ok = false;
};

LoadedSource LoadSource(const std::string& path) {
  LoadedSource loaded;
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "ringsim: cannot open %s\n", path.c_str());
    return loaded;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  loaded.source = buffer.str();

  loaded.manifest = ParseManifest(loaded.source);
  if (!loaded.manifest.ok()) {
    std::fprintf(stderr, "ringsim: manifest: %s\n", loaded.manifest.error.c_str());
    return loaded;
  }
  loaded.assembled = Assemble(loaded.source);
  if (!loaded.assembled.ok) {
    std::fprintf(stderr, "ringsim: %s: %s\n", path.c_str(),
                 loaded.assembled.error.ToString().c_str());
    return loaded;
  }
  loaded.ok = true;
  return loaded;
}

// Post-run reporting shared by program and restore modes: trace events,
// tty output, fault summary, counters, per-process status; returns the
// process-derived exit code (max exited code, 111 for any unfinished).
int ReportRun(const Machine& machine, const RunResult& result, bool trace, bool stats) {
  if (trace) {
    for (const TraceEvent& e : machine.trace().events()) {
      if (e.kind == EventKind::kRingSwitch || e.kind == EventKind::kTrap) {
        std::printf("%s\n", e.ToString().c_str());
      }
    }
  }
  if (!machine.TtyOutput().empty()) {
    std::printf("tty: %s\n", machine.TtyOutput().c_str());
  }
  if (machine.fault_injector() != nullptr) {
    std::printf("%s\n", machine.fault_injector()->Summary().c_str());
    if (trace) {
      for (const FaultEvent& e : machine.fault_injector()->events()) {
        std::printf("fault: %s\n", e.ToString().c_str());
      }
    }
  }
  if (stats) {
    std::printf("counters: %s\n", machine.cpu().counters().ToString().c_str());
  }
  std::printf("%s\n", result.ToString().c_str());
  int exit_code = 0;
  for (const auto& p : machine.supervisor().processes()) {
    if (p->state == ProcessState::kExited) {
      std::printf("process %d ('%s'): exited with %lld\n", p->pid, p->user.c_str(),
                  static_cast<long long>(p->exit_code));
      exit_code = std::max(exit_code, static_cast<int>(p->exit_code & 0xFF));
    } else {
      std::printf("process %d ('%s'): %s (%s at %u|%u)\n", p->pid, p->user.c_str(),
                  p->state == ProcessState::kKilled ? "KILLED" : "did not finish",
                  std::string(TrapCauseName(p->kill_cause)).c_str(), p->kill_pc.segno,
                  p->kill_pc.wordno);
      exit_code = 111;
    }
  }
  return exit_code;
}

int Run(const std::string& path, bool list, bool trace, bool audit, bool fast_path,
        bool block_engine, bool chain, bool shared_decode, bool stats, uint64_t max_cycles,
        const FaultConfig& fault, const std::string& snapshot_out) {
  const LoadedSource loaded = LoadSource(path);
  if (!loaded.ok) {
    return 2;
  }
  const Manifest& manifest = loaded.manifest;
  const AssembleResult& assembled = loaded.assembled;

  if (list) {
    for (const AssembledSegment& seg : assembled.program.segments) {
      std::printf("; segment %s (%zu words, %u gates)\n", seg.name.c_str(), seg.words.size(),
                  seg.gate_count);
      std::printf("%s\n", DisassembleSegment(seg.words, seg.gate_count).c_str());
    }
  }

  MachineConfig config;
  config.fault = fault;
  config.fast_path = fast_path;
  config.block_engine = block_engine;
  config.chain = chain;
  config.shared_decode = shared_decode;
  Machine machine(config);
  if (!machine.ok()) {
    std::fprintf(stderr, "ringsim: machine construction failed\n");
    return 2;
  }
  machine.trace().set_enabled(trace);
  std::string error;
  if (!InstantiateGuest(assembled.program, manifest, &machine, &error)) {
    std::fprintf(stderr, "ringsim: %s\n", error.c_str());
    return 2;
  }

  if (audit) {
    const auto findings =
        AuditProtectionState(&machine.memory(), machine.registry(), machine.supervisor());
    for (const AuditFinding& f : findings) {
      std::printf("audit: %s\n", f.ToString().c_str());
    }
    std::printf("audit: %zu finding(s), %s\n", findings.size(),
                AuditClean(findings) ? "clean" : "NOT CLEAN");
  }

  const RunResult result = machine.Run(max_cycles);

  if (!snapshot_out.empty()) {
    std::string snap_error;
    if (!SaveSnapshotFile(machine, snapshot_out, &snap_error, machine.fault_injector())) {
      std::fprintf(stderr, "ringsim: snapshot: %s\n", snap_error.c_str());
      return 2;
    }
    std::printf("snapshot: wrote %s\n", snapshot_out.c_str());
  }
  return ReportRun(machine, result, trace, stats);
}

// Restore mode: rebuild a machine from a snapshot image and run it to
// completion. The machine shape (memory size, cycle model, mode,
// quantum) comes from the image's meta section; a corrupted, truncated,
// or incompatible image is rejected with a structured error and exit 2.
int RunRestore(const std::string& restore_path, const std::string& snapshot_out, bool trace,
               bool fast_path, bool block_engine, bool chain, bool shared_decode, bool stats,
               uint64_t max_cycles) {
  std::vector<uint8_t> image;
  std::string error;
  if (!ReadSnapshotFile(restore_path, &image, &error)) {
    std::fprintf(stderr, "ringsim: restore: %s\n", error.c_str());
    return 2;
  }
  SnapshotMeta meta;
  if (!PeekSnapshotMeta(image, &meta, &error)) {
    std::fprintf(stderr, "ringsim: restore: %s: %s\n", restore_path.c_str(), error.c_str());
    return 2;
  }
  MachineConfig config;
  config.memory_words = meta.memory_words;
  config.cycle_model = meta.cycle_model;
  config.quantum = meta.quantum;
  config.mode = meta.mode;
  config.fast_path = fast_path;
  config.block_engine = block_engine;
  config.chain = chain;
  config.shared_decode = shared_decode;
  Machine machine(config);
  if (!machine.ok()) {
    std::fprintf(stderr, "ringsim: machine construction failed\n");
    return 2;
  }
  if (!RestoreSnapshot(image, &machine, &error)) {
    std::fprintf(stderr, "ringsim: restore: %s: %s\n", restore_path.c_str(), error.c_str());
    return 2;
  }
  std::printf("restored %s (cycles=%llu)\n", restore_path.c_str(),
              static_cast<unsigned long long>(machine.cpu().cycles()));
  const RunResult result = machine.Run(max_cycles);
  if (!snapshot_out.empty()) {
    std::string snap_error;
    if (!SaveSnapshotFile(machine, snapshot_out, &snap_error, machine.fault_injector())) {
      std::fprintf(stderr, "ringsim: snapshot: %s\n", snap_error.c_str());
      return 2;
    }
    std::printf("snapshot: wrote %s\n", snapshot_out.c_str());
  }
  return ReportRun(machine, result, trace, stats);
}

// Fleet mode: N machines, each loaded with the same program, scheduled
// across a worker-thread pool. Per-machine results (and the process exit
// status) are bit-identical at any --threads value; only the host
// throughput and per-thread utilization in the summary vary.
int RunFleet(const std::string& path, uint64_t fleet_size, int threads, uint64_t slice_cycles,
             uint64_t checkpoint_every, int max_restarts, bool cold_boot, bool fast_path,
             bool block_engine, bool chain, bool shared_decode, bool stats, uint64_t max_cycles,
             uint64_t fault_seed, uint32_t fault_rate) {
  const LoadedSource loaded = LoadSource(path);
  if (!loaded.ok) {
    return 2;
  }

  // Golden-image spawning: pay assemble+boot+load once, then clone every
  // fleet member copy-on-write. Fault injection keeps the cold path —
  // each machine needs its own derived-seed injector stream, which a
  // clone of one golden would share.
  std::shared_ptr<const GoldenImage> golden;
  if (!cold_boot && fault_rate == 0) {
    // Host engine flags are part of the identity: a golden built with
    // the block engine off must not serve a run that wants it on.
    const uint64_t identity = ProgramIdentity(loaded.assembled.program) ^
                              ((fast_path ? 1u : 0u) | (block_engine ? 2u : 0u) |
                               (chain ? 4u : 0u) | (shared_decode ? 8u : 0u));
    golden = GoldenImageRegistry::Instance().Acquire(
        identity, [&loaded, fast_path, block_engine, chain,
                   shared_decode]() -> std::unique_ptr<Machine> {
          MachineConfig config;
          config.fast_path = fast_path;
          config.block_engine = block_engine;
          config.chain = chain;
          config.shared_decode = shared_decode;
          auto machine = std::make_unique<Machine>(config);
          std::string error;
          if (!machine->ok() ||
              !InstantiateGuest(loaded.assembled.program, loaded.manifest, machine.get(),
                                &error)) {
            return nullptr;
          }
          return machine;
        });
    if (golden == nullptr) {
      std::fprintf(stderr, "ringsim: fleet: golden image construction failed\n");
      return 2;
    }
  }

  FleetConfig fleet_config;
  fleet_config.threads = threads;
  if (slice_cycles > 0) {
    fleet_config.slice_cycles = slice_cycles;
  }
  fleet_config.checkpoint_every_quanta = checkpoint_every;
  fleet_config.max_restarts = max_restarts;
  Fleet fleet(fleet_config);
  for (uint64_t i = 0; i < fleet_size; ++i) {
    // The factory runs on a worker thread; `loaded` and `golden` outlive
    // fleet.Run(), which blocks until every machine retires.
    const auto factory = [&loaded, &golden, fast_path, block_engine, chain, shared_decode,
                          fault_seed, fault_rate, i]() -> std::unique_ptr<Machine> {
      if (golden != nullptr) {
        return golden->Spawn();
      }
      MachineConfig config;
      config.fast_path = fast_path;
      config.block_engine = block_engine;
      config.chain = chain;
      config.shared_decode = shared_decode;
      if (fault_rate > 0) {
        // Derived seed: every machine gets its own reproducible stream.
        config.fault = FaultConfig::Uniform(fault_seed + i, fault_rate);
      }
      auto machine = std::make_unique<Machine>(config);
      std::string error;
      if (!machine->ok() ||
          !InstantiateGuest(loaded.assembled.program, loaded.manifest, machine.get(), &error)) {
        return nullptr;
      }
      return machine;
    };
    fleet.Add(StrFormat("machine-%llu", static_cast<unsigned long long>(i)), factory,
              max_cycles);
  }

  const FleetStats fleet_stats = fleet.Run();
  for (const MachineResult& result : fleet.results()) {
    std::printf("%s\n", result.ToString().c_str());
    for (const std::string& line : result.process_status) {
      std::printf("  %s\n", line.c_str());
    }
    if (!result.tty.empty()) {
      std::printf("  tty: %s\n", result.tty.c_str());
    }
  }
  if (stats) {
    std::printf("aggregate counters: %s\n", fleet_stats.aggregate.ToString().c_str());
  }
  std::printf("%s\n", fleet_stats.ToString().c_str());
  return fleet.ExitCode();
}

// Differential fuzzing mode: N generated guests, each checked under
// every engine configuration; the first divergence stops the run, is
// optionally shrunk, and is written out as a self-contained repro file.
// Exit codes: 0 all trials agree, 1 divergence found, 2 harness error
// (a generated guest failed to assemble/instantiate — a generator bug).
int RunFuzz(uint64_t trials, uint64_t first_seed, bool shrink, std::string repro_out,
            bool ablation, bool chain_ablation, bool chain, bool shared_decode) {
  FuzzOptions options;
  options.ablate_block_call = ablation;
  options.ablate_chain = chain_ablation;
  options.chain = chain;
  options.shared_decode = shared_decode;
  for (uint64_t i = 0; i < trials; ++i) {
    const uint64_t seed = first_seed + i;
    const GeneratedGuest guest = GenerateGuest(seed);
    const CheckResult check = CheckGuest(guest.source, options);
    if (!check.ok) {
      std::fprintf(stderr, "ringsim: fuzz: seed %llu: %s\n",
                   static_cast<unsigned long long>(seed), check.error.c_str());
      return 2;
    }
    if (!check.divergence.found) {
      continue;
    }
    std::printf("fuzz: seed %llu: DIVERGENCE: %s\n", static_cast<unsigned long long>(seed),
                check.divergence.ToString().c_str());
    std::string repro_source = guest.source;
    if (shrink) {
      const auto oracle = [&options](const std::string& candidate) {
        const CheckResult r = CheckGuest(candidate, options);
        return r.ok && r.divergence.found;
      };
      const ShrinkResult shrunk = Shrink(guest.source, oracle);
      repro_source = shrunk.source;
      std::printf("fuzz: shrunk to %d instruction(s) in %d oracle call(s)\n",
                  shrunk.instructions, shrunk.oracle_calls);
    }
    if (repro_out.empty()) {
      repro_out = StrFormat("fuzz_repro_%llu.asm", static_cast<unsigned long long>(seed));
    }
    const std::string repro =
        FormatRepro(seed, check.divergence.ToString(), repro_source);
    std::ofstream file(repro_out);
    file << repro;
    if (!file) {
      std::fprintf(stderr, "ringsim: fuzz: cannot write %s\n", repro_out.c_str());
      return 2;
    }
    file.close();
    std::printf("fuzz: repro written to %s\n", repro_out.c_str());
    std::printf("fuzz: %llu trial(s), 1 divergence(s)\n",
                static_cast<unsigned long long>(trials));
    return 1;
  }
  std::printf("fuzz: %llu trial(s), 0 divergence(s)\n",
              static_cast<unsigned long long>(trials));
  return 0;
}

// Strict decimal parse: the whole string must be digits. strtoul alone
// would turn a typo'd value into 0 and silently disable the feature.
bool ParseU64(const char* s, uint64_t* out) {
  if (*s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  bool list = false;
  bool trace = false;
  bool audit = false;
  bool fast_path = true;
  bool block_engine = true;
  bool chain = true;
  bool shared_decode = true;
  bool stats = false;
  uint64_t max_cycles = 100'000'000;
  uint64_t fault_seed = 1;
  uint32_t fault_rate = 0;
  uint64_t fleet_size = 0;
  uint64_t threads = 1;
  uint64_t slice_cycles = 0;
  uint64_t checkpoint_every = 0;
  uint64_t max_restarts = 0;
  bool cold_boot = false;
  bool saw_fleet_only_flag = false;
  std::string fleet_only_flag;
  uint64_t fuzz_trials = 0;
  uint64_t fuzz_seed = 1;
  bool fuzz_shrink = false;
  bool fuzz_ablation = false;
  bool fuzz_chain_ablation = false;
  std::string fuzz_repro_out;
  bool saw_fuzz_only_flag = false;
  std::string fuzz_only_flag;
  std::string path;
  std::string snapshot_out;
  std::string restore_path;
  constexpr char kUsage[] =
      "usage: ringsim [--list] [--trace] [--audit] [--stats] [--no-fastpath]\n"
      "               [--no-block-engine] [--no-chain] [--no-shared-decode]\n"
      "               [--max-cycles=N] [--fault-rate=PPM]\n"
      "               [--fault-seed=N] [--snapshot-out=FILE]\n"
      "               [--fleet=N [--threads=T] [--slice-cycles=N]\n"
      "                [--checkpoint-every=N] [--max-restarts=R] [--cold-boot]]\n"
      "               program.asm\n"
      "       ringsim --restore=FILE [--trace] [--stats] [--max-cycles=N]\n"
      "               [--no-fastpath] [--no-block-engine] [--no-chain]\n"
      "               [--no-shared-decode] [--snapshot-out=FILE]\n"
      "       ringsim --fuzz=N [--fuzz-seed=S] [--shrink] [--fuzz-repro-out=FILE]\n"
      "               [--fuzz-ablation] [--fuzz-chain-ablation] [--no-chain]\n"
      "               [--no-shared-decode]\n";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--no-fastpath") {
      fast_path = false;
    } else if (arg == "--no-block-engine") {
      block_engine = false;
    } else if (arg == "--no-chain") {
      chain = false;
    } else if (arg == "--no-shared-decode") {
      shared_decode = false;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg.rfind("--max-cycles=", 0) == 0) {
      if (!rings::ParseU64(arg.c_str() + 13, &max_cycles)) {
        std::fprintf(stderr, "ringsim: %s: not a number\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      if (!rings::ParseU64(arg.c_str() + 13, &fault_seed)) {
        std::fprintf(stderr, "ringsim: %s: not a number\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--fault-rate=", 0) == 0) {
      uint64_t ppm = 0;
      if (!rings::ParseU64(arg.c_str() + 13, &ppm) || ppm > 1'000'000) {
        std::fprintf(stderr, "ringsim: %s: expected 0..1000000 ppm\n", arg.c_str());
        return 2;
      }
      fault_rate = static_cast<uint32_t>(ppm);
    } else if (arg.rfind("--fleet=", 0) == 0) {
      if (!rings::ParseU64(arg.c_str() + 8, &fleet_size) || fleet_size == 0) {
        std::fprintf(stderr, "ringsim: %s: expected a machine count >= 1\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!rings::ParseU64(arg.c_str() + 10, &threads) || threads == 0 || threads > 1024) {
        std::fprintf(stderr, "ringsim: %s: expected a thread count in 1..1024\n", arg.c_str());
        return 2;
      }
      saw_fleet_only_flag = true;
      fleet_only_flag = "--threads";
    } else if (arg.rfind("--slice-cycles=", 0) == 0) {
      if (!rings::ParseU64(arg.c_str() + 15, &slice_cycles) || slice_cycles == 0) {
        std::fprintf(stderr, "ringsim: %s: expected a cycle count >= 1\n", arg.c_str());
        return 2;
      }
      saw_fleet_only_flag = true;
      fleet_only_flag = "--slice-cycles";
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      if (!rings::ParseU64(arg.c_str() + 19, &checkpoint_every) || checkpoint_every == 0) {
        std::fprintf(stderr, "ringsim: %s: expected a quantum count >= 1\n", arg.c_str());
        return 2;
      }
      saw_fleet_only_flag = true;
      fleet_only_flag = "--checkpoint-every";
    } else if (arg.rfind("--max-restarts=", 0) == 0) {
      if (!rings::ParseU64(arg.c_str() + 15, &max_restarts) || max_restarts > 1000) {
        std::fprintf(stderr, "ringsim: %s: expected a restart count in 0..1000\n", arg.c_str());
        return 2;
      }
      saw_fleet_only_flag = true;
      fleet_only_flag = "--max-restarts";
    } else if (arg == "--cold-boot") {
      cold_boot = true;
      saw_fleet_only_flag = true;
      fleet_only_flag = "--cold-boot";
    } else if (arg.rfind("--fuzz=", 0) == 0) {
      if (!rings::ParseU64(arg.c_str() + 7, &fuzz_trials) || fuzz_trials == 0) {
        std::fprintf(stderr, "ringsim: %s: expected a trial count >= 1\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--fuzz-seed=", 0) == 0) {
      if (!rings::ParseU64(arg.c_str() + 12, &fuzz_seed)) {
        std::fprintf(stderr, "ringsim: %s: not a number\n", arg.c_str());
        return 2;
      }
      saw_fuzz_only_flag = true;
      fuzz_only_flag = "--fuzz-seed";
    } else if (arg == "--shrink") {
      fuzz_shrink = true;
      saw_fuzz_only_flag = true;
      fuzz_only_flag = "--shrink";
    } else if (arg == "--fuzz-ablation") {
      fuzz_ablation = true;
      saw_fuzz_only_flag = true;
      fuzz_only_flag = "--fuzz-ablation";
    } else if (arg == "--fuzz-chain-ablation") {
      fuzz_chain_ablation = true;
      saw_fuzz_only_flag = true;
      fuzz_only_flag = "--fuzz-chain-ablation";
    } else if (arg.rfind("--fuzz-repro-out=", 0) == 0) {
      fuzz_repro_out = arg.substr(17);
      if (fuzz_repro_out.empty()) {
        std::fprintf(stderr, "ringsim: %s: expected a file path\n", arg.c_str());
        return 2;
      }
      saw_fuzz_only_flag = true;
      fuzz_only_flag = "--fuzz-repro-out";
    } else if (arg.rfind("--snapshot-out=", 0) == 0) {
      snapshot_out = arg.substr(15);
      if (snapshot_out.empty()) {
        std::fprintf(stderr, "ringsim: %s: expected a file path\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--restore=", 0) == 0) {
      restore_path = arg.substr(10);
      if (restore_path.empty()) {
        std::fprintf(stderr, "ringsim: %s: expected a file path\n", arg.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      if (!path.empty()) {
        std::fprintf(stderr, "ringsim: unexpected extra argument '%s' ('%s' already given)\n",
                     arg.c_str(), path.c_str());
        return 2;
      }
      path = arg;
    } else {
      std::fprintf(stderr, "ringsim: unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (fleet_size == 0 && saw_fleet_only_flag) {
    std::fprintf(stderr, "ringsim: %s is only valid with --fleet=N\n", fleet_only_flag.c_str());
    return 2;
  }
  if (fuzz_trials == 0 && saw_fuzz_only_flag) {
    std::fprintf(stderr, "ringsim: %s is only valid with --fuzz=N\n", fuzz_only_flag.c_str());
    return 2;
  }
  if (fuzz_trials > 0) {
    if (!path.empty()) {
      std::fprintf(stderr, "ringsim: --fuzz takes no program file (got '%s')\n", path.c_str());
      return 2;
    }
    if (fleet_size > 0 || !restore_path.empty()) {
      std::fprintf(stderr, "ringsim: --fuzz cannot be combined with --fleet or --restore\n");
      return 2;
    }
    return rings::RunFuzz(fuzz_trials, fuzz_seed, fuzz_shrink, fuzz_repro_out, fuzz_ablation,
                          fuzz_chain_ablation, chain, shared_decode);
  }
  if (!restore_path.empty()) {
    if (!path.empty()) {
      std::fprintf(stderr, "ringsim: --restore takes no program file (got '%s')\n",
                   path.c_str());
      return 2;
    }
    if (fleet_size > 0) {
      std::fprintf(stderr, "ringsim: --restore cannot be combined with --fleet\n");
      return 2;
    }
    return rings::RunRestore(restore_path, snapshot_out, trace, fast_path, block_engine, chain,
                             shared_decode, stats, max_cycles);
  }
  if (path.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  if (fleet_size > 0) {
    if (!snapshot_out.empty()) {
      std::fprintf(stderr, "ringsim: --snapshot-out is only valid in single-machine mode\n");
      return 2;
    }
    return rings::RunFleet(path, fleet_size, static_cast<int>(threads), slice_cycles,
                           checkpoint_every, static_cast<int>(max_restarts), cold_boot,
                           fast_path, block_engine, chain, shared_decode, stats, max_cycles,
                           fault_seed, fault_rate);
  }
  const rings::FaultConfig fault = rings::FaultConfig::Uniform(fault_seed, fault_rate);
  return rings::Run(path, list, trace, audit, fast_path, block_engine, chain, shared_decode,
                    stats, max_cycles, fault, snapshot_out);
}

// ringsimd — multi-tenant serving daemon for the ring-protection machine.
//
//   ringsimd --socket=PATH [--threads=T] [--slice-cycles=N] [--max-cycles=N]
//
// Listens on a Unix-domain stream socket and turns workload submissions
// into machines served by the work-stealing pool in src/serve/server.h.
// The first submission of a distinct program boots a golden image; every
// later submission of the same program is a copy-on-write clone. A
// submission's fingerprint is bit-identical to a standalone
// `ringsim program.asm` run of the same guest (the CI smoke job pins
// this).
//
// Wire protocol: newline-terminated command lines per connection, state
// accumulating until `run`.
//
//   tenant <name>            attribute the next submission to <name>
//   budget <tenant> <max-cycles|-> <max-memory-words|->
//                            set a tenant's budget (`-` = unlimited)
//   stdin <text>             tty input fed to the machine before it runs
//   max-cycles <n>           per-submission simulated-cycle cap
//   source <n-bytes>         next <n-bytes> raw bytes are kasm source
//                            (with its `;;` manifest)
//   image <n-bytes>          next <n-bytes> raw bytes are a snapshot
//                            image (as written by ringsim --snapshot-out)
//   run                      submit; replies `queued <id>`, then blocks
//                            until retirement and replies
//                            `done <id> status=<s> exit=<n> cycles=<n>
//                             fingerprint=<hex16> [error=...]` followed
//                            by `tty <n-bytes>` + that many raw bytes
//   ping                     replies `pong` (readiness probe)
//   shutdown                 replies `bye`, drains queued work, exits
//
// SIGINT/SIGTERM drain and exit cleanly, removing the socket file.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/serve/server.h"

namespace rings {
namespace {

std::atomic<int> g_listen_fd{-1};
std::atomic<bool> g_stop{false};

// Async-signal-safe: flag the stop and shut the listening socket down so
// the blocked accept() returns and the main loop drains. shutdown(), not
// close() — closing an fd another thread is accept()ing on does not wake
// it; the main loop owns the close.
void HandleSignal(int) {
  g_stop.store(true);
  const int fd = g_listen_fd.exchange(-1);
  if (fd >= 0) {
    shutdown(fd, SHUT_RDWR);
  }
}

// Minimal buffered reader over a connection fd: text lines for commands,
// exact byte counts for source/image payloads.
class ConnReader {
 public:
  explicit ConnReader(int fd) : fd_(fd) {}

  // Reads one '\n'-terminated line (terminator stripped). False on EOF
  // or error.
  bool ReadLine(std::string* line) {
    line->clear();
    while (true) {
      for (; pos_ < buffer_.size(); ++pos_) {
        if (buffer_[pos_] == '\n') {
          line->assign(buffer_.begin(), buffer_.begin() + pos_);
          buffer_.erase(buffer_.begin(), buffer_.begin() + pos_ + 1);
          pos_ = 0;
          return true;
        }
      }
      if (!Fill()) {
        return false;
      }
    }
  }

  // Reads exactly `n` raw bytes. False on EOF or error.
  bool ReadBytes(size_t n, std::vector<uint8_t>* out) {
    while (buffer_.size() < n) {
      if (!Fill()) {
        return false;
      }
    }
    out->assign(buffer_.begin(), buffer_.begin() + n);
    buffer_.erase(buffer_.begin(), buffer_.begin() + n);
    pos_ = 0;
    return true;
  }

 private:
  bool Fill() {
    char chunk[4096];
    const ssize_t got = read(fd_, chunk, sizeof(chunk));
    if (got <= 0) {
      return false;
    }
    buffer_.insert(buffer_.end(), chunk, chunk + got);
    return true;
  }

  int fd_;
  std::vector<char> buffer_;
  size_t pos_ = 0;
};

bool WriteAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t wrote = write(fd, p, n);
    if (wrote <= 0) {
      return false;
    }
    p += wrote;
    n -= static_cast<size_t>(wrote);
  }
  return true;
}

bool WriteLine(int fd, const std::string& line) {
  const std::string out = line + "\n";
  return WriteAll(fd, out.data(), out.size());
}

// Strict decimal parse, mirroring ringsim's flag handling: a typo must
// be an error, never a silent zero.
bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || *end != '\0') return false;
  *out = v;
  return true;
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    const size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) {
      words.push_back(line.substr(start, i - start));
    }
  }
  return words;
}

std::string FormatDone(const Completion& completion) {
  std::string line = StrFormat(
      "done %llu status=%s exit=%d cycles=%llu fingerprint=%016llx",
      static_cast<unsigned long long>(completion.id),
      std::string(ServeStatusName(completion.status)).c_str(), completion.exit_code,
      static_cast<unsigned long long>(completion.cycles),
      static_cast<unsigned long long>(completion.fingerprint));
  if (!completion.error.empty()) {
    std::string sanitized = completion.error;
    for (char& c : sanitized) {
      if (c == '\n') c = ' ';
    }
    line += " error=" + sanitized;
  }
  return line;
}

// One client connection: accumulate submission state line by line,
// submit on `run`, stream the completion back.
void ServeConnection(Server* server, int fd) {
  ConnReader reader(fd);
  Submission pending;
  std::string line;
  while (!g_stop.load() && reader.ReadLine(&line)) {
    const std::vector<std::string> words = SplitWords(line);
    if (words.empty()) {
      continue;
    }
    const std::string& cmd = words[0];
    if (cmd == "ping") {
      if (!WriteLine(fd, "pong")) break;
    } else if (cmd == "tenant" && words.size() == 2) {
      pending.tenant = words[1];
      if (!WriteLine(fd, "ok")) break;
    } else if (cmd == "budget" && words.size() == 4) {
      TenantBudget budget;
      if ((words[2] != "-" && !ParseU64(words[2], &budget.max_cycles_total)) ||
          (words[3] != "-" && !ParseU64(words[3], &budget.max_memory_words))) {
        if (!WriteLine(fd, "error budget: expected <tenant> <max-cycles|-> <max-memory|->"))
          break;
        continue;
      }
      server->SetTenantBudget(words[1], budget);
      if (!WriteLine(fd, "ok")) break;
    } else if (cmd == "stdin") {
      pending.stdin_text = line.size() > 6 ? line.substr(6) : "";
      if (!WriteLine(fd, "ok")) break;
    } else if (cmd == "max-cycles" && words.size() == 2) {
      if (!ParseU64(words[1], &pending.max_cycles)) {
        if (!WriteLine(fd, "error max-cycles: not a number")) break;
        continue;
      }
      if (!WriteLine(fd, "ok")) break;
    } else if ((cmd == "source" || cmd == "image") && words.size() == 2) {
      uint64_t n = 0;
      if (!ParseU64(words[1], &n) || n == 0 || n > (uint64_t{1} << 30)) {
        if (!WriteLine(fd, StrFormat("error %s: expected a byte count", cmd.c_str()))) break;
        continue;
      }
      std::vector<uint8_t> bytes;
      if (!reader.ReadBytes(static_cast<size_t>(n), &bytes)) {
        break;  // client hung up mid-payload
      }
      if (cmd == "source") {
        pending.source.assign(bytes.begin(), bytes.end());
        pending.image.clear();
      } else {
        pending.image = std::move(bytes);
        pending.source.clear();
      }
      if (!WriteLine(fd, "ok")) break;
    } else if (cmd == "run") {
      const uint64_t id = server->Submit(std::move(pending));
      pending = Submission{};
      if (!WriteLine(fd, StrFormat("queued %llu", static_cast<unsigned long long>(id)))) break;
      const Completion completion = server->Wait(id);
      if (!WriteLine(fd, FormatDone(completion))) break;
      if (!WriteLine(fd, StrFormat("tty %zu", completion.tty.size()))) break;
      if (!completion.tty.empty() &&
          !WriteAll(fd, completion.tty.data(), completion.tty.size())) {
        break;
      }
    } else if (cmd == "shutdown") {
      WriteLine(fd, "bye");
      HandleSignal(0);
      break;
    } else {
      if (!WriteLine(fd, StrFormat("error unknown command '%s'", cmd.c_str()))) break;
    }
  }
  close(fd);
}

int RunDaemon(const std::string& socket_path, const ServeConfig& config) {
  const int listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::fprintf(stderr, "ringsimd: socket: %s\n", std::strerror(errno));
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "ringsimd: socket path too long: %s\n", socket_path.c_str());
    close(listen_fd);
    return 2;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  unlink(socket_path.c_str());  // stale socket from a previous run
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listen_fd, 64) < 0) {
    std::fprintf(stderr, "ringsimd: bind %s: %s\n", socket_path.c_str(), std::strerror(errno));
    close(listen_fd);
    return 2;
  }
  g_listen_fd.store(listen_fd);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon

  Server server(config);
  std::printf("ringsimd: listening on %s (%d worker thread(s))\n", socket_path.c_str(),
              server.config().threads);
  std::fflush(stdout);

  std::vector<std::thread> connections;
  while (!g_stop.load()) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      break;  // listening socket closed by a signal or `shutdown`
    }
    connections.emplace_back([&server, fd] { ServeConnection(&server, fd); });
  }
  g_listen_fd.store(-1);
  close(listen_fd);
  // Drain: refuse new work, finish everything queued, then join the
  // connection threads (their pending Waits complete during Shutdown).
  server.Shutdown();
  for (std::thread& t : connections) {
    t.join();
  }
  unlink(socket_path.c_str());
  std::printf("ringsimd: shut down cleanly\n");
  return 0;
}

}  // namespace
}  // namespace rings

int main(int argc, char** argv) {
  std::string socket_path;
  rings::ServeConfig config;
  uint64_t threads = 0;
  constexpr char kUsage[] =
      "usage: ringsimd --socket=PATH [--threads=T] [--slice-cycles=N]\n"
      "                [--max-cycles=N]\n";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
      if (socket_path.empty()) {
        std::fprintf(stderr, "ringsimd: %s: expected a path\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!rings::ParseU64(arg.substr(10), &threads) || threads == 0 || threads > 1024) {
        std::fprintf(stderr, "ringsimd: %s: expected a thread count in 1..1024\n", arg.c_str());
        return 2;
      }
      config.threads = static_cast<int>(threads);
    } else if (arg.rfind("--slice-cycles=", 0) == 0) {
      if (!rings::ParseU64(arg.substr(15), &config.slice_cycles) || config.slice_cycles == 0) {
        std::fprintf(stderr, "ringsimd: %s: expected a cycle count >= 1\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--max-cycles=", 0) == 0) {
      if (!rings::ParseU64(arg.substr(13), &config.default_max_cycles) ||
          config.default_max_cycles == 0) {
        std::fprintf(stderr, "ringsimd: %s: expected a cycle count >= 1\n", arg.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else {
      std::fprintf(stderr, "ringsimd: unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  return rings::RunDaemon(socket_path, config);
}

#!/usr/bin/env python3
"""End-to-end smoke for the ringsimd serving daemon.

Starts ringsimd on a private Unix socket, submits a batch of mixed
workloads (every ``.asm`` guest in ``--examples``, round-robin, over
several concurrent connections), and checks that each served fingerprint
is bit-identical to a standalone ``ringsim --fleet=1`` run of the same
guest — the serving path (golden-image clone, work stealing, slicing)
must be invisible to the simulated machine. Finishes with a clean
``shutdown`` and asserts the daemon exits 0 and removes its socket.

Prints ``serve smoke: OK`` on success; any mismatch or protocol error is
fatal with a nonzero exit.
"""

import argparse
import os
import re
import socket
import subprocess
import sys
import tempfile
import threading
import time


def read_line(sock_file):
    line = sock_file.readline()
    if not line:
        raise RuntimeError("daemon closed the connection")
    return line.decode().rstrip("\n")


def expect(sock_file, want):
    got = read_line(sock_file)
    if got != want:
        raise RuntimeError("expected %r, got %r" % (want, got))


def submit(sock, sock_file, source, stdin_text=None):
    """Submits one kasm source over an open connection; returns the done line."""
    if stdin_text is not None:
        sock.sendall(("stdin %s\n" % stdin_text).encode())
        expect(sock_file, "ok")
    payload = source.encode()
    sock.sendall(("source %d\n" % len(payload)).encode() + payload)
    expect(sock_file, "ok")
    sock.sendall(b"run\n")
    queued = read_line(sock_file)
    if not queued.startswith("queued "):
        raise RuntimeError("expected queued, got %r" % queued)
    done = read_line(sock_file)
    if not done.startswith("done "):
        raise RuntimeError("expected done, got %r" % done)
    tty = read_line(sock_file)
    match = re.match(r"tty (\d+)$", tty)
    if not match:
        raise RuntimeError("expected tty header, got %r" % tty)
    n = int(match.group(1))
    if n:
        sock_file.read(n)
    return done


def standalone_fingerprint(ringsim, program):
    """Fingerprint of a standalone run (fleet of one prints it)."""
    out = subprocess.run(
        [ringsim, "--fleet=1", program], capture_output=True, text=True
    ).stdout
    match = re.search(r"fingerprint=([0-9a-f]{16})", out)
    if not match:
        raise RuntimeError("no fingerprint in ringsim output for %s:\n%s" % (program, out))
    return match.group(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ringsimd", required=True)
    parser.add_argument("--ringsim", required=True)
    parser.add_argument("--examples", required=True, help="directory of .asm guests")
    parser.add_argument("--count", type=int, default=50, help="total submissions")
    parser.add_argument("--threads", type=int, default=4, help="daemon worker threads")
    parser.add_argument("--connections", type=int, default=4)
    args = parser.parse_args()

    programs = sorted(
        os.path.join(args.examples, f)
        for f in os.listdir(args.examples)
        if f.endswith(".asm")
    )
    if not programs:
        print("serve smoke: no .asm guests in", args.examples)
        return 1
    sources = {p: open(p).read() for p in programs}
    expected = {p: standalone_fingerprint(args.ringsim, p) for p in programs}

    tmpdir = tempfile.mkdtemp(prefix="ringsimd-smoke-")
    sock_path = os.path.join(tmpdir, "sock")
    daemon = subprocess.Popen(
        [args.ringsimd, "--socket=%s" % sock_path, "--threads=%d" % args.threads],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        deadline = time.time() + 30
        while not os.path.exists(sock_path):
            if daemon.poll() is not None or time.time() > deadline:
                raise RuntimeError("daemon did not come up")
            time.sleep(0.05)

        # Round-robin the guests across concurrent client connections.
        jobs = [programs[i % len(programs)] for i in range(args.count)]
        failures = []
        lock = threading.Lock()

        def client(worker):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(sock_path)
            sock_file = sock.makefile("rb")
            for i, program in enumerate(jobs):
                if i % args.connections != worker:
                    continue
                done = submit(sock, sock_file, sources[program])
                match = re.search(r"fingerprint=([0-9a-f]{16})", done)
                if not match or match.group(1) != expected[program]:
                    with lock:
                        failures.append(
                            "%s: served %s, standalone fingerprint=%s"
                            % (program, done, expected[program])
                        )
            sock.close()

        clients = [
            threading.Thread(target=client, args=(w,)) for w in range(args.connections)
        ]
        for t in clients:
            t.start()
        for t in clients:
            t.join()

        # Clean shutdown over the protocol.
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(sock_path)
        sock_file = sock.makefile("rb")
        sock.sendall(b"shutdown\n")
        expect(sock_file, "bye")
        sock.close()
        if daemon.wait(timeout=30) != 0:
            raise RuntimeError("daemon exited %d" % daemon.returncode)
        if os.path.exists(sock_path):
            raise RuntimeError("daemon left its socket behind")

        if failures:
            for f in failures:
                print("serve smoke: MISMATCH:", f)
            return 1
        print(
            "serve smoke: OK (%d submissions, %d guests, %d connections, %d worker threads)"
            % (args.count, len(programs), args.connections, args.threads)
        )
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()


if __name__ == "__main__":
    sys.exit(main())
